//! Deterministic fault schedules for the simulator: scripted and
//! MTBF/MTTR-drawn component failures, plus the retry policy the driver
//! applies when a fault kills in-flight work.
//!
//! A [`FaultPlan`] is pure configuration — parsing and materializing it
//! performs no side effects, and all randomness flows through a
//! [`SimRng`] substream derived from [`FAULT_STREAM`], so the same plan
//! against the same seed always yields the same concrete event list
//! regardless of thread count or federation worker count. An empty plan
//! is the explicit "no faults" value: drivers skip every fault code path
//! and produce bitwise-identical reports to a plan-less run.

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::SimDuration;

/// RNG substream id for fault schedules: `root.substream_path(&[FAULT_STREAM, ..])`.
pub const FAULT_STREAM: u64 = 0xFA17;

/// One typed fault (or recovery) against a numbered component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Server crashes: in-flight and queued tasks are killed and re-dispatched.
    ServerCrash {
        /// Target server index.
        server: u32,
    },
    /// Crashed server comes back (wakes through the normal resume path).
    ServerRecover {
        /// Target server index.
        server: u32,
    },
    /// Server degrades: tasks started while degraded run at `factor` speed.
    ServerStraggle {
        /// Target server index.
        server: u32,
        /// Execution speed multiplier in `(0, 1]` (0.5 = half speed).
        factor: f64,
    },
    /// Straggler interval ends; the server returns to full speed.
    ServerStraggleEnd {
        /// Target server index.
        server: u32,
    },
    /// Fabric switch dies: routes through it break, crossing work retries.
    SwitchDown {
        /// Switch index (into the topology's switch list).
        switch: u32,
    },
    /// Fabric switch returns.
    SwitchUp {
        /// Switch index.
        switch: u32,
    },
    /// Fabric link dies.
    LinkDown {
        /// Link index.
        link: u32,
    },
    /// Fabric link returns.
    LinkUp {
        /// Link index.
        link: u32,
    },
    /// WAN link dies: inter-site paths recompute, in-flight hops restart.
    WanLinkDown {
        /// WAN link index (into the cluster's WAN link list).
        link: u32,
    },
    /// WAN link returns.
    WanLinkUp {
        /// WAN link index.
        link: u32,
    },
}

impl FaultKind {
    /// `true` for the recovery half of a fault pair.
    pub fn is_recovery(self) -> bool {
        matches!(
            self,
            FaultKind::ServerRecover { .. }
                | FaultKind::ServerStraggleEnd { .. }
                | FaultKind::SwitchUp { .. }
                | FaultKind::LinkUp { .. }
                | FaultKind::WanLinkUp { .. }
        )
    }

    /// `true` for WAN-scoped faults (handled by the federation
    /// coordinator, not a site's own event loop).
    pub fn is_wan(self) -> bool {
        matches!(
            self,
            FaultKind::WanLinkDown { .. } | FaultKind::WanLinkUp { .. }
        )
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::ServerCrash { .. } => "crash",
            FaultKind::ServerRecover { .. } => "recover",
            FaultKind::ServerStraggle { .. } => "straggle",
            FaultKind::ServerStraggleEnd { .. } => "straggle-end",
            FaultKind::SwitchDown { .. } => "switch-down",
            FaultKind::SwitchUp { .. } => "switch-up",
            FaultKind::LinkDown { .. } => "link-down",
            FaultKind::LinkUp { .. } => "link-up",
            FaultKind::WanLinkDown { .. } => "wan-down",
            FaultKind::WanLinkUp { .. } => "wan-up",
        }
    }
}

/// A concrete fault instant: offset from the run start, kind, and owning
/// site (0 for standalone runs; federated plans prefix entries with
/// `site<k>.` to target a specific site).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultEvent {
    /// Offset from simulation start.
    pub at: SimDuration,
    /// What fails (or recovers).
    pub kind: FaultKind,
    /// Owning site (ignored for WAN faults, which are federation-global).
    pub site: u32,
}

/// How killed work is re-dispatched: bounded retries with exponential
/// backoff applied as a sim-time delay before re-placement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries allowed per job before it is abandoned.
    pub max_retries: u32,
    /// Delay before the first re-dispatch.
    pub backoff: SimDuration,
    /// Backoff multiplier per subsequent retry.
    pub backoff_mult: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: SimDuration::from_millis(10),
            backoff_mult: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `attempt` (1-based):
    /// `backoff * mult^(attempt-1)`, exponent capped to keep the delay finite.
    pub fn delay(&self, attempt: u32) -> SimDuration {
        let exp = attempt.saturating_sub(1).min(30) as i32;
        let ns = self.backoff.as_nanos() as f64 * self.backoff_mult.powi(exp);
        SimDuration::from_nanos(ns.round() as u64)
    }
}

/// An MTBF/MTTR arm: one server alternates exponential up/down intervals
/// drawn from the fault RNG substream.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomFaults {
    /// Owning site.
    pub site: u32,
    /// Target server index.
    pub server: u32,
    /// Mean time between failures.
    pub mtbf: SimDuration,
    /// Mean time to repair.
    pub mttr: SimDuration,
}

/// A deterministic fault schedule: scripted events, optional MTBF/MTTR
/// arms, and the retry policy for killed work.
///
/// # Examples
///
/// ```
/// use holdcsim_faults::{FaultKind, FaultPlan};
/// use holdcsim_des::time::SimDuration;
///
/// let plan = FaultPlan::parse("crash@2s:3; recover@4s:3; retry:max=5,backoff=20ms,mult=2").unwrap();
/// assert_eq!(plan.events.len(), 2);
/// assert_eq!(plan.retry.max_retries, 5);
/// assert!(matches!(plan.events[0].kind, FaultKind::ServerCrash { server: 3 }));
/// assert_eq!(plan.events[0].at, SimDuration::from_secs(2));
/// assert!(!plan.is_empty());
/// assert!(FaultPlan::default().is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FaultPlan {
    /// Scripted fault instants.
    pub events: Vec<FaultEvent>,
    /// MTBF/MTTR arms expanded at materialization time.
    pub random: Vec<RandomFaults>,
    /// Retry policy for work killed by a fault.
    pub retry: RetryPolicy,
}

impl FaultPlan {
    /// `true` when the plan injects nothing (drivers then skip every fault
    /// code path, keeping reports bitwise identical to a plan-less run).
    pub fn is_empty(&self) -> bool {
        self.events.is_empty() && self.random.is_empty()
    }

    /// Parses a plan spec: entries separated by `;` or newlines, `#`
    /// comment lines skipped. Entry forms (`<t>` is a duration like `2s`,
    /// `500ms`, `10us`):
    ///
    /// - `crash@<t>:<server>` / `recover@<t>:<server>`
    /// - `straggle@<t>:<server>,<factor>,<duration>` (expands to a
    ///   start/end pair)
    /// - `switch-down@<t>:<switch>` / `switch-up@<t>:<switch>`
    /// - `link-down@<t>:<link>` / `link-up@<t>:<link>`
    /// - `wan-down@<t>:<link>` / `wan-up@<t>:<link>`
    /// - `mtbf:server=<id>,mtbf=<t>,mttr=<t>` (random arm)
    /// - `retry:max=<n>,backoff=<t>,mult=<f>`
    ///
    /// Any entry may carry a `site<k>.` prefix to target site `k` of a
    /// federation (e.g. `site1.crash@2s:0`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::default();
        for raw in spec.split([';', '\n']) {
            let mut e = raw.trim();
            if e.is_empty() || e.starts_with('#') {
                continue;
            }
            let mut site = 0u32;
            if let Some(rest) = e.strip_prefix("site") {
                if let Some((num, tail)) = rest.split_once('.') {
                    site = num
                        .trim()
                        .parse()
                        .map_err(|_| format!("bad site index in `{raw}`"))?;
                    e = tail;
                }
            }
            if let Some(rest) = e.strip_prefix("retry:") {
                plan.retry = parse_retry(rest)?;
            } else if let Some(rest) = e.strip_prefix("mtbf:") {
                plan.random.push(parse_mtbf(rest, site)?);
            } else {
                parse_event(e, site, &mut plan.events)?;
            }
        }
        Ok(plan)
    }

    /// The non-WAN entries owned by `site`, with site fields cleared —
    /// the sub-plan a federation hands to that site's standalone config.
    pub fn for_site(&self, site: u32) -> FaultPlan {
        FaultPlan {
            events: self
                .events
                .iter()
                .filter(|e| !e.kind.is_wan() && e.site == site)
                .map(|e| FaultEvent { site: 0, ..*e })
                .collect(),
            random: self
                .random
                .iter()
                .filter(|r| r.site == site)
                .map(|r| RandomFaults { site: 0, ..*r })
                .collect(),
            retry: self.retry,
        }
    }

    /// The WAN-scoped scripted events, sorted by time (stable on ties).
    pub fn wan_events(&self) -> Vec<FaultEvent> {
        let mut ev: Vec<FaultEvent> = self
            .events
            .iter()
            .filter(|e| e.kind.is_wan())
            .copied()
            .collect();
        ev.sort_by_key(|e| e.at);
        ev
    }

    /// Expands the plan into a concrete, time-sorted event list over
    /// `[0, horizon]`: scripted events plus exponential up/down intervals
    /// drawn per MTBF arm from `rng` (derive it via
    /// `root.substream_path(&[FAULT_STREAM])` so schedules are independent
    /// of every other stream). WAN events are excluded — the federation
    /// coordinator owns those.
    pub fn materialize(&self, horizon: SimDuration, rng: &SimRng) -> Vec<FaultEvent> {
        let mut out: Vec<FaultEvent> = self
            .events
            .iter()
            .filter(|e| !e.kind.is_wan() && e.at <= horizon)
            .copied()
            .collect();
        for (i, arm) in self.random.iter().enumerate() {
            // One substream per arm: draws are independent of other arms.
            let mut r = rng.substream_path(&[i as u64]);
            let mut t = 0.0f64;
            let end = horizon.as_secs_f64();
            let (up_rate, down_rate) = (
                1.0 / arm.mtbf.as_secs_f64().max(1e-9),
                1.0 / arm.mttr.as_secs_f64().max(1e-9),
            );
            loop {
                t += r.exp(up_rate);
                if t >= end {
                    break;
                }
                out.push(FaultEvent {
                    at: SimDuration::from_secs_f64(t),
                    kind: FaultKind::ServerCrash { server: arm.server },
                    site: arm.site,
                });
                t += r.exp(down_rate);
                if t >= end {
                    break;
                }
                out.push(FaultEvent {
                    at: SimDuration::from_secs_f64(t),
                    kind: FaultKind::ServerRecover { server: arm.server },
                    site: arm.site,
                });
            }
        }
        // Stable: scripted order first, then arm order, on equal instants.
        out.sort_by_key(|e| e.at);
        out
    }
}

/// Parses `spec` as a plan, or — when it names a readable file — parses
/// the file's contents (the CLI's `--faults <spec|file>` form).
pub fn load_plan(spec_or_path: &str) -> Result<FaultPlan, String> {
    match std::fs::read_to_string(spec_or_path) {
        Ok(text) => FaultPlan::parse(&text),
        Err(_) => FaultPlan::parse(spec_or_path),
    }
}

/// Parses a duration literal: number (decimals allowed) + `ns`/`us`/`ms`/`s`.
pub fn parse_duration(s: &str) -> Result<SimDuration, String> {
    let s = s.trim();
    let (num, scale_ns) = if let Some(v) = s.strip_suffix("ms") {
        (v, 1e6)
    } else if let Some(v) = s.strip_suffix("us") {
        (v, 1e3)
    } else if let Some(v) = s.strip_suffix("ns") {
        (v, 1.0)
    } else if let Some(v) = s.strip_suffix('s') {
        (v, 1e9)
    } else {
        return Err(format!("duration `{s}` needs a unit (ns/us/ms/s)"));
    };
    let x: f64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad duration `{s}`"))?;
    if !x.is_finite() || x < 0.0 {
        return Err(format!("duration `{s}` must be finite and non-negative"));
    }
    Ok(SimDuration::from_nanos((x * scale_ns).round() as u64))
}

fn parse_event(e: &str, site: u32, out: &mut Vec<FaultEvent>) -> Result<(), String> {
    let (head, tail) = e
        .split_once('@')
        .ok_or_else(|| format!("entry `{e}` is not `<kind>@<time>:<target>`"))?;
    let (time, target) = tail
        .split_once(':')
        .ok_or_else(|| format!("entry `{e}` is missing `:<target>`"))?;
    let at = parse_duration(time)?;
    let head = head.trim();
    let idx = |t: &str| -> Result<u32, String> {
        t.trim()
            .parse()
            .map_err(|_| format!("bad target index in `{e}`"))
    };
    let kind = match head {
        "crash" => FaultKind::ServerCrash {
            server: idx(target)?,
        },
        "recover" => FaultKind::ServerRecover {
            server: idx(target)?,
        },
        "straggle" => {
            let mut parts = target.splitn(3, ',');
            let server = idx(parts.next().unwrap_or(""))?;
            let factor: f64 = parts
                .next()
                .ok_or_else(|| format!("straggle in `{e}` needs `<server>,<factor>,<dur>`"))?
                .trim()
                .parse()
                .map_err(|_| format!("bad straggle factor in `{e}`"))?;
            if !(factor > 0.0 && factor <= 1.0) {
                return Err(format!("straggle factor in `{e}` must be in (0, 1]"));
            }
            let dur = parse_duration(
                parts
                    .next()
                    .ok_or_else(|| format!("straggle in `{e}` needs a duration"))?,
            )?;
            out.push(FaultEvent {
                at,
                kind: FaultKind::ServerStraggle { server, factor },
                site,
            });
            out.push(FaultEvent {
                at: at + dur,
                kind: FaultKind::ServerStraggleEnd { server },
                site,
            });
            return Ok(());
        }
        "switch-down" => FaultKind::SwitchDown {
            switch: idx(target)?,
        },
        "switch-up" => FaultKind::SwitchUp {
            switch: idx(target)?,
        },
        "link-down" => FaultKind::LinkDown { link: idx(target)? },
        "link-up" => FaultKind::LinkUp { link: idx(target)? },
        "wan-down" => FaultKind::WanLinkDown { link: idx(target)? },
        "wan-up" => FaultKind::WanLinkUp { link: idx(target)? },
        other => return Err(format!("unknown fault kind `{other}`")),
    };
    out.push(FaultEvent { at, kind, site });
    Ok(())
}

fn parse_retry(rest: &str) -> Result<RetryPolicy, String> {
    let mut r = RetryPolicy::default();
    for kv in rest.split(',') {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("retry option `{kv}` is not `key=value`"))?;
        match k.trim() {
            "max" => {
                r.max_retries = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad retry max `{v}`"))?
            }
            "backoff" => r.backoff = parse_duration(v)?,
            "mult" => {
                let m: f64 = v
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad retry mult `{v}`"))?;
                if !(m >= 1.0 && m.is_finite()) {
                    return Err(format!("retry mult `{v}` must be >= 1"));
                }
                r.backoff_mult = m;
            }
            other => return Err(format!("unknown retry option `{other}`")),
        }
    }
    Ok(r)
}

fn parse_mtbf(rest: &str, site: u32) -> Result<RandomFaults, String> {
    let (mut server, mut mtbf, mut mttr) = (None, None, None);
    for kv in rest.split(',') {
        let (k, v) = kv
            .split_once('=')
            .ok_or_else(|| format!("mtbf option `{kv}` is not `key=value`"))?;
        match k.trim() {
            "server" => {
                server = Some(
                    v.trim()
                        .parse()
                        .map_err(|_| format!("bad mtbf server `{v}`"))?,
                )
            }
            "mtbf" => mtbf = Some(parse_duration(v)?),
            "mttr" => mttr = Some(parse_duration(v)?),
            other => return Err(format!("unknown mtbf option `{other}`")),
        }
    }
    Ok(RandomFaults {
        site,
        server: server.ok_or("mtbf arm needs server=<id>")?,
        mtbf: mtbf.ok_or("mtbf arm needs mtbf=<dur>")?,
        mttr: mttr.ok_or("mtbf arm needs mttr=<dur>")?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scripted_events_and_retry() {
        let p = FaultPlan::parse(
            "crash@2s:3;recover@4s:3\nswitch-down@1500ms:2; switch-up@2500ms:2;\
             retry:max=2,backoff=5ms,mult=3",
        )
        .unwrap();
        assert_eq!(p.events.len(), 4);
        assert_eq!(p.retry.max_retries, 2);
        assert_eq!(p.retry.backoff, SimDuration::from_millis(5));
        assert_eq!(p.retry.backoff_mult, 3.0);
        assert_eq!(p.events[2].at, SimDuration::from_millis(1500));
        assert!(matches!(
            p.events[2].kind,
            FaultKind::SwitchDown { switch: 2 }
        ));
    }

    #[test]
    fn straggle_expands_to_pair() {
        let p = FaultPlan::parse("straggle@1s:5,0.25,2s").unwrap();
        assert_eq!(p.events.len(), 2);
        assert!(
            matches!(p.events[0].kind, FaultKind::ServerStraggle { server: 5, factor } if factor == 0.25)
        );
        assert_eq!(p.events[1].at, SimDuration::from_secs(3));
        assert!(matches!(
            p.events[1].kind,
            FaultKind::ServerStraggleEnd { server: 5 }
        ));
    }

    #[test]
    fn site_prefix_and_for_site_split() {
        let p =
            FaultPlan::parse("site1.crash@2s:0; crash@3s:1; wan-down@1s:0; wan-up@5s:0").unwrap();
        let s0 = p.for_site(0);
        let s1 = p.for_site(1);
        assert_eq!(s0.events.len(), 1);
        assert_eq!(s1.events.len(), 1);
        assert_eq!(s1.events[0].site, 0, "site field cleared in sub-plan");
        assert_eq!(p.wan_events().len(), 2);
        assert!(p.wan_events()[0].at < p.wan_events()[1].at);
    }

    #[test]
    fn mtbf_arm_materializes_deterministically() {
        let p = FaultPlan::parse("mtbf:server=0,mtbf=2s,mttr=500ms").unwrap();
        let rng = SimRng::seed_from(42).substream_path(&[FAULT_STREAM]);
        let a = p.materialize(SimDuration::from_secs(60), &rng);
        let b = p.materialize(SimDuration::from_secs(60), &rng);
        assert_eq!(a, b);
        assert!(a.len() > 10, "60s / ~2.5s cycle should fire repeatedly");
        // Alternating crash/recover, sorted by time.
        for w in a.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
        assert!(matches!(a[0].kind, FaultKind::ServerCrash { server: 0 }));
        assert!(matches!(a[1].kind, FaultKind::ServerRecover { server: 0 }));
    }

    #[test]
    fn empty_plan_materializes_empty_without_rng_draws() {
        let p = FaultPlan::default();
        assert!(p.is_empty());
        let rng = SimRng::seed_from(1);
        assert!(p.materialize(SimDuration::from_secs(10), &rng).is_empty());
    }

    #[test]
    fn retry_delay_grows_exponentially() {
        let r = RetryPolicy {
            max_retries: 5,
            backoff: SimDuration::from_millis(10),
            backoff_mult: 2.0,
        };
        assert_eq!(r.delay(1), SimDuration::from_millis(10));
        assert_eq!(r.delay(2), SimDuration::from_millis(20));
        assert_eq!(r.delay(3), SimDuration::from_millis(40));
    }

    #[test]
    fn duration_units_parse() {
        assert_eq!(parse_duration("2s").unwrap(), SimDuration::from_secs(2));
        assert_eq!(
            parse_duration("1.5ms").unwrap(),
            SimDuration::from_micros(1500)
        );
        assert_eq!(
            parse_duration("250ns").unwrap(),
            SimDuration::from_nanos(250)
        );
        assert!(parse_duration("5").is_err());
        assert!(parse_duration("-1s").is_err());
    }

    #[test]
    fn rejects_malformed_entries() {
        assert!(FaultPlan::parse("explode@1s:0").is_err());
        assert!(FaultPlan::parse("crash@1s").is_err());
        assert!(FaultPlan::parse("straggle@1s:0,1.5,1s").is_err());
        assert!(FaultPlan::parse("retry:max=x").is_err());
        assert!(FaultPlan::parse("mtbf:server=0,mtbf=1s").is_err());
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let p = FaultPlan::parse("# storm scenario\n\ncrash@1s:0\n# done\n").unwrap();
        assert_eq!(p.events.len(), 1);
    }
}
