//! Simulation configuration: the "user script" of Fig. 1.
//!
//! Configuration structs have public fields by design — they are plain
//! inputs, constructed once and handed to [`crate::sim::Simulation`].

use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::FlowSolverKind;
use holdcsim_network::topologies::LinkSpec;
use holdcsim_power::server_profile::ServerPowerProfile;
use holdcsim_power::switch_profile::SwitchPowerProfile;
use holdcsim_server::policy::SleepPolicy;
use holdcsim_server::server::LocalQueueMode;
use holdcsim_workload::templates::JobTemplate;

/// Arrival-process choice for the workload generator (§III-D).
#[derive(Debug, Clone)]
pub enum ArrivalConfig {
    /// Poisson arrivals at `rate` jobs/second.
    Poisson {
        /// Arrival rate λ in jobs/second.
        rate: f64,
    },
    /// 2-state MMPP bursty arrivals.
    Mmpp2 {
        /// Long-run mean rate in jobs/second.
        base_rate: f64,
        /// λ_h/λ_l ratio (≥ 1).
        burst_ratio: f64,
        /// Long-run fraction of time in the bursty state (0, 1).
        bursty_fraction: f64,
        /// Mean dwell in the bursty state, seconds.
        mean_bursty_dwell: f64,
    },
    /// Replay of explicit arrival instants (trace-based simulation).
    Trace(Vec<SimTime>),
}

/// How dependent tasks communicate (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// One max-min-fair flow per DAG edge.
    Flow,
    /// The edge's data packetized at `mtu` and forwarded store-and-forward
    /// through per-port queues of `buffer_bytes`.
    Packet {
        /// Payload per packet.
        mtu: u64,
        /// Egress buffering per port.
        buffer_bytes: u64,
    },
}

/// Named topology selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// `k`-ary fat tree (hosts = k³/4).
    FatTree {
        /// Pod/port parameter (even).
        k: usize,
    },
    /// 2-D flattened butterfly of `k × k` switches.
    FlattenedButterfly {
        /// Grid dimension.
        k: usize,
        /// Servers per switch.
        hosts_per_switch: usize,
    },
    /// BCube(n, levels).
    BCube {
        /// Switch port count.
        n: usize,
        /// Recursion level.
        levels: usize,
    },
    /// CamCube 3-D torus of servers.
    CamCube {
        /// X dimension.
        x: usize,
        /// Y dimension.
        y: usize,
        /// Z dimension.
        z: usize,
    },
    /// All servers on one switch (§V-B validation).
    Star,
}

/// Network module configuration; absent = server-only simulation.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Which topology to build. The host count must cover
    /// [`SimConfig::server_count`]; builders are sized by the spec itself.
    pub topology: TopologySpec,
    /// Link rate/latency.
    pub link: LinkSpec,
    /// Switch power profile.
    pub switch_profile: SwitchPowerProfile,
    /// Communication granularity.
    pub comm: CommModel,
    /// Fair-share solver of the flow comm model (`Incremental` is the
    /// production arm; `Reference` re-runs global progressive filling on
    /// every change, kept selectable for A/B validation). Ignored in
    /// packet mode.
    pub flow_solver: FlowSolverKind,
    /// Port LPI hold time: a port enters Low Power Idle after being idle
    /// this long (`None` disables idle power management entirely).
    pub lpi_hold: Option<SimDuration>,
    /// Use Adaptive Link Rate instead of LPI for idle ports: rather than
    /// entering Low Power Idle, an idle port negotiates down to the lowest
    /// ALR ladder rate (Gunaratne et al. \[25\]).
    pub use_alr: bool,
    /// Model front-end ingress traffic: every task dispatch sends a
    /// request of `.0` bytes down the server's access link and every
    /// completion returns `.1` bytes, keeping access-port activity in step
    /// with serving activity (the §V-B port-state log). `None` models only
    /// inter-task traffic.
    pub ingress_bytes: Option<(u64, u64)>,
}

impl NetworkConfig {
    /// Flow-model fat tree with LPI enabled — the §IV-D setup.
    pub fn fat_tree(k: usize) -> Self {
        NetworkConfig {
            topology: TopologySpec::FatTree { k },
            link: LinkSpec::gigabit(),
            switch_profile: SwitchPowerProfile::datacenter_48port(),
            comm: CommModel::Flow,
            flow_solver: FlowSolverKind::default(),
            lpi_hold: Some(SimDuration::from_millis(10)),
            use_alr: false,
            ingress_bytes: None,
        }
    }

    /// Star of `§V-B`'s Cisco switch, packet model.
    pub fn validation_star() -> Self {
        NetworkConfig {
            topology: TopologySpec::Star,
            link: LinkSpec::gigabit(),
            switch_profile: SwitchPowerProfile::cisco_ws_c2960_24s(),
            comm: CommModel::Packet {
                mtu: 1_500,
                buffer_bytes: 512 * 1024,
            },
            flow_solver: FlowSolverKind::default(),
            lpi_hold: Some(SimDuration::from_millis(50)),
            use_alr: false,
            ingress_bytes: Some((1_500, 8_000)),
        }
    }
}

/// Global placement policy selection (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Cycle over eligible servers.
    RoundRobin,
    /// Fewest pending tasks (the paper's load-balanced dispatch).
    LeastLoaded,
    /// Consolidate onto low-indexed servers; spill only when saturated.
    PackFirst,
    /// Uniform random.
    Random,
    /// §IV-D Server-Network-Aware placement.
    NetworkAware,
}

/// A per-server on-demand DVFS governor (Table I's per-core DVFS knob,
/// applied at server granularity): raise the P-state when pending load per
/// core exceeds `high`, lower it when below `low`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsConfig {
    /// Pending-per-core threshold above which frequency steps up.
    pub high: f64,
    /// Pending-per-core threshold below which frequency steps down.
    pub low: f64,
}

impl DvfsConfig {
    /// A conventional on-demand governor: speed up beyond 0.8 pending per
    /// core, slow down below 0.2.
    pub fn ondemand() -> Self {
        DvfsConfig {
            high: 0.8,
            low: 0.2,
        }
    }
}

/// Cluster-level controller selection (§IV-A / §IV-C).
#[derive(Debug, Clone)]
pub enum ControllerConfig {
    /// Fig. 4 provisioning: keep pending-per-active-server within
    /// `[min_load, max_load]`.
    Provisioning {
        /// Lower per-server load threshold.
        min_load: f64,
        /// Upper per-server load threshold.
        max_load: f64,
    },
    /// WASP two-pool manager (Fig. 7): promote above `t_wakeup` pending per
    /// active server, demote below `t_sleep`; sleep-pool members descend to
    /// deep sleep after `sleep_pool_tau`.
    Pools {
        /// Promotion threshold.
        t_wakeup: f64,
        /// Demotion threshold.
        t_sleep: f64,
        /// Sleep-pool delay timer.
        sleep_pool_tau: SimDuration,
        /// Servers initially in the active pool.
        initial_active: usize,
    },
}

/// Top-level simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: same seed ⇒ identical run.
    pub seed: u64,
    /// Simulated horizon; arrivals stop and statistics close here.
    pub duration: SimDuration,
    /// Warm-up period: jobs *arriving* before this instant are executed
    /// but excluded from latency statistics (standard steady-state
    /// practice; energy and residency still cover the whole run).
    pub warmup: SimDuration,
    /// Number of servers.
    pub server_count: usize,
    /// Cores per server.
    pub cores_per_server: u32,
    /// Processor sockets per server (cores split evenly).
    pub sockets_per_server: u32,
    /// Server power profile.
    pub server_profile: ServerPowerProfile,
    /// Local queueing discipline.
    pub queue_mode: LocalQueueMode,
    /// Per-server sleep policies; one entry per server, or a single entry
    /// applied to all.
    pub sleep_policies: Vec<SleepPolicy>,
    /// Per-core heterogeneity factors applied to every server (empty =
    /// homogeneous); length must equal `cores_per_server` when set.
    pub core_speeds: Vec<f64>,
    /// Server-class assignment (§III-C: "servers ... configured to perform
    /// different tasks"): `server_classes[i]` is server `i`'s class; tasks
    /// whose spec names a class may only run there. Empty = classless.
    pub server_classes: Vec<u32>,
    /// Optional on-demand DVFS governor, evaluated every controller tick.
    pub dvfs: Option<DvfsConfig>,
    /// Job arrival process.
    pub arrivals: ArrivalConfig,
    /// Job structure generator.
    pub template: JobTemplate,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Hold unplaceable tasks in a global queue (vs queueing at a server).
    pub use_global_queue: bool,
    /// Optional network module.
    pub network: Option<NetworkConfig>,
    /// Optional cluster controller.
    pub controller: Option<ControllerConfig>,
    /// Controller sampling period.
    pub controller_period: SimDuration,
    /// Statistics sampling period (time series).
    pub sample_period: SimDuration,
}

impl SimConfig {
    /// A server-only baseline: `servers × cores`, Poisson arrivals at
    /// utilization `rho` of the given single-task `template`, least-loaded
    /// dispatch, Active-Idle servers.
    pub fn server_farm(
        servers: usize,
        cores: u32,
        rho: f64,
        template: JobTemplate,
        duration: SimDuration,
    ) -> Self {
        let mean = template.mean_total_work();
        let rate = holdcsim_workload::arrivals::PoissonArrivals::rate_for_utilization(
            rho,
            servers,
            cores as usize,
            mean,
        );
        SimConfig {
            seed: 42,
            duration,
            warmup: SimDuration::ZERO,
            server_count: servers,
            cores_per_server: cores,
            sockets_per_server: 1,
            server_profile: ServerPowerProfile::xeon_e5_2680(),
            queue_mode: LocalQueueMode::Unified,
            sleep_policies: vec![SleepPolicy::active_idle()],
            core_speeds: Vec::new(),
            server_classes: Vec::new(),
            dvfs: None,
            arrivals: ArrivalConfig::Poisson { rate },
            template,
            policy: PolicyKind::LeastLoaded,
            use_global_queue: false,
            network: None,
            controller: None,
            controller_period: SimDuration::from_millis(100),
            sample_period: SimDuration::from_secs(1),
        }
    }

    /// The sleep policy of server `i` (single-entry lists broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `sleep_policies` is empty.
    pub fn policy_for(&self, i: usize) -> SleepPolicy {
        if self.sleep_policies.len() == 1 {
            self.sleep_policies[0]
        } else {
            self.sleep_policies[i]
        }
    }

    /// Sets one policy for all servers.
    pub fn with_sleep_policy(mut self, policy: SleepPolicy) -> Self {
        self.sleep_policies = vec![policy];
        self
    }

    /// Sets the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_workload::presets::WorkloadPreset;

    #[test]
    fn server_farm_derives_rate_from_rho() {
        let cfg = SimConfig::server_farm(
            50,
            4,
            0.3,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(10),
        );
        let ArrivalConfig::Poisson { rate } = cfg.arrivals else {
            panic!()
        };
        // mu = 200/s, 200 cores, rho 0.3 => 12_000 jobs/s.
        assert!((rate - 12_000.0).abs() < 1e-6);
    }

    #[test]
    fn policy_broadcast() {
        let cfg = SimConfig::server_farm(
            3,
            1,
            0.1,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(1),
        )
        .with_sleep_policy(SleepPolicy::shallow_only());
        assert_eq!(cfg.policy_for(0), SleepPolicy::shallow_only());
        assert_eq!(cfg.policy_for(2), SleepPolicy::shallow_only());
    }
}
