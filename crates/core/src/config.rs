//! Simulation configuration: the "user script" of Fig. 1.
//!
//! Configuration structs have public fields by design — they are plain
//! inputs, constructed once and handed to [`crate::sim::Simulation`].

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_faults::FaultPlan;
use holdcsim_network::flow::FlowSolverKind;
use holdcsim_network::topologies::LinkSpec;
use holdcsim_obs::ObsConfig;
use holdcsim_power::server_profile::ServerPowerProfile;
use holdcsim_power::switch_profile::SwitchPowerProfile;
use holdcsim_sched::geo::GeoPolicy;
use holdcsim_server::policy::SleepPolicy;
use holdcsim_server::server::LocalQueueMode;
use holdcsim_workload::templates::JobTemplate;

/// Arrival-process choice for the workload generator (§III-D).
#[derive(Debug, Clone)]
pub enum ArrivalConfig {
    /// Poisson arrivals at `rate` jobs/second.
    Poisson {
        /// Arrival rate λ in jobs/second.
        rate: f64,
    },
    /// 2-state MMPP bursty arrivals.
    Mmpp2 {
        /// Long-run mean rate in jobs/second.
        base_rate: f64,
        /// λ_h/λ_l ratio (≥ 1).
        burst_ratio: f64,
        /// Long-run fraction of time in the bursty state (0, 1).
        bursty_fraction: f64,
        /// Mean dwell in the bursty state, seconds.
        mean_bursty_dwell: f64,
    },
    /// Replay of explicit arrival instants (trace-based simulation).
    Trace(Vec<SimTime>),
}

/// How dependent tasks communicate (§III-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommModel {
    /// One max-min-fair flow per DAG edge.
    Flow,
    /// The edge's data packetized at `mtu` and forwarded store-and-forward
    /// through per-port queues of `buffer_bytes`.
    Packet {
        /// Payload per packet.
        mtu: u64,
        /// Egress buffering per port.
        buffer_bytes: u64,
    },
}

/// Named topology selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopologySpec {
    /// `k`-ary fat tree (hosts = k³/4).
    FatTree {
        /// Pod/port parameter (even).
        k: usize,
    },
    /// 2-D flattened butterfly of `k × k` switches.
    FlattenedButterfly {
        /// Grid dimension.
        k: usize,
        /// Servers per switch.
        hosts_per_switch: usize,
    },
    /// BCube(n, levels).
    BCube {
        /// Switch port count.
        n: usize,
        /// Recursion level.
        levels: usize,
    },
    /// CamCube 3-D torus of servers.
    CamCube {
        /// X dimension.
        x: usize,
        /// Y dimension.
        y: usize,
        /// Z dimension.
        z: usize,
    },
    /// All servers on one switch (§V-B validation).
    Star,
}

/// Network module configuration; absent = server-only simulation.
#[derive(Debug, Clone)]
pub struct NetworkConfig {
    /// Which topology to build. The host count must cover
    /// [`SimConfig::server_count`]; builders are sized by the spec itself.
    pub topology: TopologySpec,
    /// Link rate/latency.
    pub link: LinkSpec,
    /// Switch power profile.
    pub switch_profile: SwitchPowerProfile,
    /// Communication granularity.
    pub comm: CommModel,
    /// Fair-share solver of the flow comm model (`Incremental` is the
    /// production arm; `Reference` re-runs global progressive filling on
    /// every change, kept selectable for A/B validation; `Cohort` tracks
    /// whole bottleneck cohorts as virtual-time rate cells — the fast
    /// arm under overload/incast). All three retrace byte-identical
    /// trajectories on the same seed. Ignored in packet mode.
    pub flow_solver: FlowSolverKind,
    /// Port LPI hold time: a port enters Low Power Idle after being idle
    /// this long (`None` disables idle power management entirely).
    pub lpi_hold: Option<SimDuration>,
    /// Use Adaptive Link Rate instead of LPI for idle ports: rather than
    /// entering Low Power Idle, an idle port negotiates down to the lowest
    /// ALR ladder rate (Gunaratne et al. \[25\]).
    pub use_alr: bool,
    /// Model front-end ingress traffic: every task dispatch sends a
    /// request of `.0` bytes down the server's access link and every
    /// completion returns `.1` bytes, keeping access-port activity in step
    /// with serving activity (the §V-B port-state log). `None` models only
    /// inter-task traffic.
    pub ingress_bytes: Option<(u64, u64)>,
}

impl NetworkConfig {
    /// Flow-model fat tree with LPI enabled — the §IV-D setup.
    pub fn fat_tree(k: usize) -> Self {
        NetworkConfig {
            topology: TopologySpec::FatTree { k },
            link: LinkSpec::gigabit(),
            switch_profile: SwitchPowerProfile::datacenter_48port(),
            comm: CommModel::Flow,
            flow_solver: FlowSolverKind::default(),
            lpi_hold: Some(SimDuration::from_millis(10)),
            use_alr: false,
            ingress_bytes: None,
        }
    }

    /// Star of `§V-B`'s Cisco switch, packet model.
    pub fn validation_star() -> Self {
        NetworkConfig {
            topology: TopologySpec::Star,
            link: LinkSpec::gigabit(),
            switch_profile: SwitchPowerProfile::cisco_ws_c2960_24s(),
            comm: CommModel::Packet {
                mtu: 1_500,
                buffer_bytes: 512 * 1024,
            },
            flow_solver: FlowSolverKind::default(),
            lpi_hold: Some(SimDuration::from_millis(50)),
            use_alr: false,
            ingress_bytes: Some((1_500, 8_000)),
        }
    }
}

/// Global placement policy selection (§III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// Cycle over eligible servers.
    RoundRobin,
    /// Fewest pending tasks (the paper's load-balanced dispatch).
    LeastLoaded,
    /// Consolidate onto low-indexed servers; spill only when saturated.
    PackFirst,
    /// Uniform random.
    Random,
    /// §IV-D Server-Network-Aware placement.
    NetworkAware,
}

/// A per-server on-demand DVFS governor (Table I's per-core DVFS knob,
/// applied at server granularity): raise the P-state when pending load per
/// core exceeds `high`, lower it when below `low`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DvfsConfig {
    /// Pending-per-core threshold above which frequency steps up.
    pub high: f64,
    /// Pending-per-core threshold below which frequency steps down.
    pub low: f64,
}

impl DvfsConfig {
    /// A conventional on-demand governor: speed up beyond 0.8 pending per
    /// core, slow down below 0.2.
    pub fn ondemand() -> Self {
        DvfsConfig {
            high: 0.8,
            low: 0.2,
        }
    }
}

/// Cluster-level controller selection (§IV-A / §IV-C).
#[derive(Debug, Clone)]
pub enum ControllerConfig {
    /// Fig. 4 provisioning: keep pending-per-active-server within
    /// `[min_load, max_load]`.
    Provisioning {
        /// Lower per-server load threshold.
        min_load: f64,
        /// Upper per-server load threshold.
        max_load: f64,
    },
    /// WASP two-pool manager (Fig. 7): promote above `t_wakeup` pending per
    /// active server, demote below `t_sleep`; sleep-pool members descend to
    /// deep sleep after `sleep_pool_tau`.
    Pools {
        /// Promotion threshold.
        t_wakeup: f64,
        /// Demotion threshold.
        t_sleep: f64,
        /// Sleep-pool delay timer.
        sleep_pool_tau: SimDuration,
        /// Servers initially in the active pool.
        initial_active: usize,
    },
}

/// Top-level simulation configuration.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// RNG seed: same seed ⇒ identical run.
    pub seed: u64,
    /// Simulated horizon; arrivals stop and statistics close here.
    pub duration: SimDuration,
    /// Warm-up period: jobs *arriving* before this instant are executed
    /// but excluded from latency statistics (standard steady-state
    /// practice; energy and residency still cover the whole run).
    pub warmup: SimDuration,
    /// Number of servers.
    pub server_count: usize,
    /// Cores per server.
    pub cores_per_server: u32,
    /// Processor sockets per server (cores split evenly).
    pub sockets_per_server: u32,
    /// Server power profile.
    pub server_profile: ServerPowerProfile,
    /// Local queueing discipline.
    pub queue_mode: LocalQueueMode,
    /// Per-server sleep policies; one entry per server, or a single entry
    /// applied to all.
    pub sleep_policies: Vec<SleepPolicy>,
    /// Per-core heterogeneity factors applied to every server (empty =
    /// homogeneous); length must equal `cores_per_server` when set.
    pub core_speeds: Vec<f64>,
    /// Server-class assignment (§III-C: "servers ... configured to perform
    /// different tasks"): `server_classes[i]` is server `i`'s class; tasks
    /// whose spec names a class may only run there. Empty = classless.
    pub server_classes: Vec<u32>,
    /// Optional on-demand DVFS governor, evaluated every controller tick.
    pub dvfs: Option<DvfsConfig>,
    /// Job arrival process.
    pub arrivals: ArrivalConfig,
    /// Job structure generator.
    pub template: JobTemplate,
    /// Placement policy.
    pub policy: PolicyKind,
    /// Hold unplaceable tasks in a global queue (vs queueing at a server).
    pub use_global_queue: bool,
    /// Optional network module.
    pub network: Option<NetworkConfig>,
    /// Optional cluster controller.
    pub controller: Option<ControllerConfig>,
    /// Controller sampling period.
    pub controller_period: SimDuration,
    /// Statistics sampling period (time series).
    pub sample_period: SimDuration,
    /// Observability: tracing, fingerprints, metrics probes, profiling.
    /// Defaults to everything off, which costs one branch per event.
    pub obs: ObsConfig,
    /// Fault injection plan (`None` or an empty plan leave the run
    /// bitwise-identical to a fault-free simulator).
    pub faults: Option<FaultPlan>,
}

impl SimConfig {
    /// A server-only baseline: `servers × cores`, Poisson arrivals at
    /// utilization `rho` of the given single-task `template`, least-loaded
    /// dispatch, Active-Idle servers.
    pub fn server_farm(
        servers: usize,
        cores: u32,
        rho: f64,
        template: JobTemplate,
        duration: SimDuration,
    ) -> Self {
        let mean = template.mean_total_work();
        let rate = holdcsim_workload::arrivals::PoissonArrivals::rate_for_utilization(
            rho,
            servers,
            cores as usize,
            mean,
        );
        SimConfig {
            seed: 42,
            duration,
            warmup: SimDuration::ZERO,
            server_count: servers,
            cores_per_server: cores,
            sockets_per_server: 1,
            server_profile: ServerPowerProfile::xeon_e5_2680(),
            queue_mode: LocalQueueMode::Unified,
            sleep_policies: vec![SleepPolicy::active_idle()],
            core_speeds: Vec::new(),
            server_classes: Vec::new(),
            dvfs: None,
            arrivals: ArrivalConfig::Poisson { rate },
            template,
            policy: PolicyKind::LeastLoaded,
            use_global_queue: false,
            network: None,
            controller: None,
            controller_period: SimDuration::from_millis(100),
            sample_period: SimDuration::from_secs(1),
            obs: ObsConfig::default(),
            faults: None,
        }
    }

    /// The sleep policy of server `i` (single-entry lists broadcast).
    ///
    /// # Panics
    ///
    /// Panics if `sleep_policies` is empty.
    pub fn policy_for(&self, i: usize) -> SleepPolicy {
        if self.sleep_policies.len() == 1 {
            self.sleep_policies[0]
        } else {
            self.sleep_policies[i]
        }
    }

    /// Sets one policy for all servers.
    pub fn with_sleep_policy(mut self, policy: SleepPolicy) -> Self {
        self.sleep_policies = vec![policy];
        self
    }

    /// Sets the placement policy.
    pub fn with_policy(mut self, policy: PolicyKind) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

// ---------------------------------------------------------------------
// Multi-datacenter federation configuration
// ---------------------------------------------------------------------

/// How a WAN link carries cross-site transfers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WanLinkMode {
    /// A fixed-latency, fixed-rate pipe with FIFO serialization: each
    /// transfer occupies the link for `bytes × 8 / rate` before the
    /// propagation latency, queueing behind earlier transfers.
    #[default]
    Pipe,
    /// Concurrent transfers share the link max-min fairly, driven through
    /// the same [`FlowSolverKind`] arms as intra-site flow traffic.
    Flow,
}

/// Default WAN transport energy: ~2 nJ per bit moved across a link.
pub const WAN_ENERGY_PER_BYTE_J: f64 = 1.6e-8;

/// One inter-cluster WAN link between two WAN nodes. Nodes `0..sites`
/// are the site gateways; higher ids are relay/hub nodes declared via
/// [`WanConfig::extra_nodes`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WanLink {
    /// One endpoint (WAN node id).
    pub a: u32,
    /// The other endpoint (WAN node id).
    pub b: u32,
    /// Link rate in bits/second.
    pub rate_bps: u64,
    /// One-way propagation latency.
    pub latency: SimDuration,
    /// Transport energy charged per payload byte crossing this link.
    pub energy_per_byte_j: f64,
    /// Pipe or fair-shared flow transport (selectable per link).
    pub mode: WanLinkMode,
}

impl WanLink {
    /// A pipe-mode link with the default transport energy.
    pub fn new(a: u32, b: u32, rate_bps: u64, latency: SimDuration) -> Self {
        WanLink {
            a,
            b,
            rate_bps,
            latency,
            energy_per_byte_j: WAN_ENERGY_PER_BYTE_J,
            mode: WanLinkMode::Pipe,
        }
    }
}

/// The inter-cluster WAN: point-to-point links and/or hub relays.
#[derive(Debug, Clone, PartialEq)]
pub struct WanConfig {
    /// The links. Every site pair that exchanges jobs must be connected
    /// (possibly through relay nodes).
    pub links: Vec<WanLink>,
    /// Relay/hub nodes beyond the site gateways (WAN node ids
    /// `sites .. sites + extra_nodes`).
    pub extra_nodes: u32,
    /// Fair-share solver arm for [`WanLinkMode::Flow`] links.
    pub flow_solver: FlowSolverKind,
}

impl WanConfig {
    /// A full mesh of identical point-to-point links between `sites`.
    pub fn full_mesh(sites: usize, rate_bps: u64, latency: SimDuration) -> Self {
        let mut links = Vec::new();
        for a in 0..sites as u32 {
            for b in (a + 1)..sites as u32 {
                links.push(WanLink::new(a, b, rate_bps, latency));
            }
        }
        WanConfig {
            links,
            extra_nodes: 0,
            flow_solver: FlowSolverKind::default(),
        }
    }

    /// A hub-and-spoke WAN: every site connects to one relay (WAN node
    /// `sites`) with a `latency` spoke, so site-to-site paths pay two
    /// serializations and `2 × latency`.
    pub fn hub(sites: usize, rate_bps: u64, latency: SimDuration) -> Self {
        let hub = sites as u32;
        let links = (0..sites as u32)
            .map(|s| WanLink::new(s, hub, rate_bps, latency))
            .collect();
        WanConfig {
            links,
            extra_nodes: 1,
            flow_solver: FlowSolverKind::default(),
        }
    }

    /// Switches every link to the given transport mode.
    pub fn with_mode(mut self, mode: WanLinkMode) -> Self {
        for l in &mut self.links {
            l.mode = mode;
        }
        self
    }
}

/// Per-site overrides on top of [`ClusterConfig::base`]. Fields left
/// `None` inherit the base configuration.
#[derive(Debug, Clone, Default)]
pub struct SiteSpec {
    /// Servers at this site.
    pub server_count: Option<usize>,
    /// Site-affinity weight of the workload mix: this site's share of the
    /// base arrival rate is `affinity / Σ affinity` (0 = no home traffic).
    /// [`SiteSpec::default`] sets 1.0 (an even split).
    pub affinity: Option<f64>,
    /// Site-local fabric override (topology, comm model, link speed).
    pub network: Option<NetworkConfig>,
    /// Per-site server power profile.
    pub server_profile: Option<ServerPowerProfile>,
    /// Per-site sleep policy (broadcast to the site's servers).
    pub sleep_policy: Option<SleepPolicy>,
}

impl SiteSpec {
    /// The affinity weight (default 1.0).
    pub fn affinity(&self) -> f64 {
        self.affinity.unwrap_or(1.0)
    }
}

/// Substream id under which per-site seeds are derived from
/// [`ClusterConfig::seed`] (via [`SimRng::substream_path`]).
pub const SITE_SEED_STREAM: u64 = 0xFED5;

/// A multi-datacenter federation: several [`SimConfig`] fabrics behind
/// one driver, an inter-cluster WAN, and a geo-aware dispatch policy.
///
/// `base` describes one site (its `arrivals` carry the *aggregate* rate,
/// split across sites by affinity weights; its `seed` is ignored in favor
/// of per-site substreams of [`ClusterConfig::seed`]).
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Federation RNG seed: per-site seeds are independent substreams.
    pub seed: u64,
    /// The per-site template configuration.
    pub base: SimConfig,
    /// The sites (at least one).
    pub sites: Vec<SiteSpec>,
    /// The inter-cluster WAN.
    pub wan: WanConfig,
    /// Which site runs each arriving job.
    pub geo: GeoPolicy,
    /// Payload bytes shipped over the WAN per forwarded job (input data
    /// following the job to its execution site).
    pub job_bytes: u64,
    /// Federation-wide fault plan: `site<k>.`-prefixed entries are routed
    /// to site `k` by [`ClusterConfig::site_configs`], WAN-link entries
    /// are applied by the federation driver.
    pub faults: Option<FaultPlan>,
}

impl ClusterConfig {
    /// An even federation: `sites` identical copies of `base`, each
    /// serving `1/sites` of the base arrival rate, jobs staying home
    /// until the local load hits one in-flight job per core.
    pub fn uniform(base: SimConfig, sites: usize, wan: WanConfig) -> Self {
        assert!(sites > 0, "a federation needs at least one site");
        ClusterConfig {
            seed: base.seed,
            base,
            sites: vec![SiteSpec::default(); sites],
            wan,
            geo: GeoPolicy::SiteLocalFirst { spill_load: 1.0 },
            job_bytes: 1 << 20,
            faults: None,
        }
    }

    /// Number of sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }

    /// Sets the geo dispatch policy.
    pub fn with_geo(mut self, geo: GeoPolicy) -> Self {
        self.geo = geo;
        self
    }

    /// Sets the federation seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Expands the federation into per-site [`SimConfig`]s: overrides
    /// applied, the aggregate arrival rate split by affinity, and every
    /// site's seed derived as an independent substream of
    /// [`ClusterConfig::seed`] via [`SimRng::substream_path`] — a site's
    /// workload depends only on `(seed, site index)`, never on how many
    /// other sites run or in what order.
    ///
    /// # Panics
    ///
    /// Panics if no site has positive affinity, if trace arrivals are
    /// combined with several sites (explicit traces cannot be split), or
    /// if a per-server base field cannot broadcast to an overridden
    /// server count.
    pub fn site_configs(&self) -> Vec<SimConfig> {
        for (i, s) in self.sites.iter().enumerate() {
            let a = s.affinity();
            assert!(
                a.is_finite() && a >= 0.0,
                "site {i} affinity must be finite and non-negative, got {a}"
            );
        }
        let total: f64 = self.sites.iter().map(|s| s.affinity()).sum();
        assert!(total > 0.0, "at least one site needs positive affinity");
        let root = SimRng::seed_from(self.seed);
        self.sites
            .iter()
            .enumerate()
            .map(|(i, spec)| {
                let mut cfg = self.base.clone();
                cfg.seed = root
                    .substream_path(&[SITE_SEED_STREAM, i as u64])
                    .next_u64();
                if let Some(n) = spec.server_count {
                    assert!(
                        cfg.server_classes.is_empty() || cfg.server_classes.len() == n,
                        "base server_classes cannot broadcast to {n} servers"
                    );
                    assert!(
                        cfg.sleep_policies.len() <= 1 || cfg.sleep_policies.len() == n,
                        "base sleep_policies cannot broadcast to {n} servers"
                    );
                    cfg.server_count = n;
                }
                let share = spec.affinity() / total;
                if share == 0.0 {
                    // No home traffic at this site: it only executes jobs
                    // forwarded to it (an empty trace never arrives).
                    cfg.arrivals = ArrivalConfig::Trace(Vec::new());
                } else {
                    match &mut cfg.arrivals {
                        ArrivalConfig::Poisson { rate } => *rate *= share,
                        ArrivalConfig::Mmpp2 { base_rate, .. } => *base_rate *= share,
                        ArrivalConfig::Trace(_) => assert!(
                            self.sites.len() == 1,
                            "trace arrivals cannot be split across sites; \
                             give each site its own ClusterConfig::base"
                        ),
                    }
                }
                if let Some(net) = &spec.network {
                    cfg.network = Some(net.clone());
                }
                if let Some(p) = &spec.server_profile {
                    cfg.server_profile = p.clone();
                }
                if let Some(sp) = spec.sleep_policy {
                    cfg.sleep_policies = vec![sp];
                }
                cfg.faults = self
                    .faults
                    .as_ref()
                    .map(|p| p.for_site(i as u32))
                    .filter(|p| !p.is_empty());
                cfg
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_workload::presets::WorkloadPreset;

    #[test]
    fn server_farm_derives_rate_from_rho() {
        let cfg = SimConfig::server_farm(
            50,
            4,
            0.3,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(10),
        );
        let ArrivalConfig::Poisson { rate } = cfg.arrivals else {
            panic!()
        };
        // mu = 200/s, 200 cores, rho 0.3 => 12_000 jobs/s.
        assert!((rate - 12_000.0).abs() < 1e-6);
    }

    fn base_cfg() -> SimConfig {
        SimConfig::server_farm(
            8,
            2,
            0.3,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(5),
        )
    }

    #[test]
    fn site_configs_split_rate_and_derive_seeds() {
        let base = base_cfg();
        let ArrivalConfig::Poisson { rate: total } = base.arrivals else {
            panic!()
        };
        let mut cc = ClusterConfig::uniform(
            base,
            3,
            WanConfig::full_mesh(3, 10_000_000_000, SimDuration::from_millis(10)),
        );
        cc.sites[0].affinity = Some(2.0);
        let cfgs = cc.site_configs();
        assert_eq!(cfgs.len(), 3);
        let rates: Vec<f64> = cfgs
            .iter()
            .map(|c| match c.arrivals {
                ArrivalConfig::Poisson { rate } => rate,
                _ => panic!(),
            })
            .collect();
        assert!((rates[0] - total / 2.0).abs() < 1e-9);
        assert!((rates[1] - total / 4.0).abs() < 1e-9);
        assert!((rates.iter().sum::<f64>() - total).abs() < 1e-6);
        // Sites own independent, stable seeds.
        assert_ne!(cfgs[0].seed, cfgs[1].seed);
        assert_eq!(cfgs[1].seed, cc.site_configs()[1].seed);
    }

    #[test]
    fn site_overrides_apply() {
        let mut cc = ClusterConfig::uniform(
            base_cfg(),
            2,
            WanConfig::hub(2, 1_000_000_000, SimDuration::from_millis(5)),
        );
        cc.sites[1].server_count = Some(4);
        cc.sites[1].sleep_policy = Some(SleepPolicy::shallow_only());
        let cfgs = cc.site_configs();
        assert_eq!(cfgs[0].server_count, 8);
        assert_eq!(cfgs[1].server_count, 4);
        assert_eq!(cfgs[1].sleep_policies, vec![SleepPolicy::shallow_only()]);
    }

    #[test]
    fn wan_builders_shape() {
        let mesh = WanConfig::full_mesh(3, 1, SimDuration::ZERO);
        assert_eq!(mesh.links.len(), 3);
        assert_eq!(mesh.extra_nodes, 0);
        let hub = WanConfig::hub(3, 1, SimDuration::ZERO).with_mode(WanLinkMode::Flow);
        assert_eq!(hub.links.len(), 3);
        assert_eq!(hub.extra_nodes, 1);
        assert!(hub.links.iter().all(|l| l.mode == WanLinkMode::Flow));
        assert!(hub.links.iter().all(|l| l.b == 3));
    }

    #[test]
    fn policy_broadcast() {
        let cfg = SimConfig::server_farm(
            3,
            1,
            0.1,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(1),
        )
        .with_sleep_policy(SleepPolicy::shallow_only());
        assert_eq!(cfg.policy_for(0), SleepPolicy::shallow_only());
        assert_eq!(cfg.policy_for(2), SleepPolicy::shallow_only());
    }
}
