//! Run-time metrics collection and the final [`SimReport`].

use holdcsim_des::stats::{SampleSet, TimeSeries};
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_server::server::{Band, Server};

/// Latency summary in seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyStats {
    /// Jobs measured.
    pub count: u64,
    /// Mean latency.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile (the paper's Fig. 8 QoS metric).
    pub p90: f64,
    /// 95th percentile (§IV-C's QoS target).
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum observed.
    pub max: f64,
}

impl LatencyStats {
    fn from_samples(s: &SampleSet) -> Self {
        let qs = s.quantiles(&[0.5, 0.9, 0.95, 0.99, 1.0]);
        let get = |i: usize| qs[i].unwrap_or(0.0);
        LatencyStats {
            count: s.count(),
            mean: s.mean(),
            p50: get(0),
            p90: get(1),
            p95: get(2),
            p99: get(3),
            max: get(4),
        }
    }
}

/// Resilience outcome of a fault-injected run. Present on a
/// [`SimReport`] only when the run carried a non-empty fault plan, so
/// fault-free reports stay bitwise identical to pre-fault builds.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilienceReport {
    /// Fault events injected (recoveries not counted).
    pub faults_injected: u64,
    /// Summed server crash downtime, seconds (a server down for the whole
    /// run contributes the full horizon).
    pub server_downtime_s: f64,
    /// Server availability: `1 − downtime / (servers × horizon)`.
    pub availability: f64,
    /// Running or queued tasks killed by server crashes.
    pub tasks_killed: u64,
    /// Distinct jobs that saw at least one task retry.
    pub jobs_retried: u64,
    /// Total task retry dispatches.
    pub retries: u64,
    /// Jobs abandoned after exhausting the retry budget.
    pub jobs_abandoned: u64,
    /// Jobs admitted but not completed by the horizon (includes the
    /// abandoned ones).
    pub jobs_unfinished: u64,
    /// Network transfers restarted after a fabric fault killed them.
    pub transfer_retries: u64,
    /// Summed fabric-switch downtime, seconds.
    pub switch_downtime_s: f64,
    /// Summed fabric-link downtime, seconds.
    pub link_downtime_s: f64,
    /// Summed WAN-link downtime, seconds (federation runs).
    pub wan_link_downtime_s: f64,
    /// Completed jobs per simulated second — goodput under faults.
    pub goodput_jobs_per_s: f64,
    /// Latency of jobs never touched by a fault retry.
    pub clean: LatencyStats,
    /// Latency of jobs that survived at least one retry.
    pub affected: LatencyStats,
}

impl ResilienceReport {
    /// Serializes as a JSON object (hand-rolled like the parent report).
    pub fn to_json(&self) -> String {
        let lat = |l: &LatencyStats| {
            format!(
                r#"{{"count":{},"mean_s":{:.6},"p50_s":{:.6},"p99_s":{:.6},"max_s":{:.6}}}"#,
                l.count, l.mean, l.p50, l.p99, l.max
            )
        };
        format!(
            r#"{{"faults_injected":{},"server_downtime_s":{:.6},"availability":{:.6},"tasks_killed":{},"jobs_retried":{},"retries":{},"jobs_abandoned":{},"jobs_unfinished":{},"transfer_retries":{},"switch_downtime_s":{:.6},"link_downtime_s":{:.6},"wan_link_downtime_s":{:.6},"goodput_jobs_per_s":{:.6},"clean":{},"affected":{}}}"#,
            self.faults_injected,
            self.server_downtime_s,
            self.availability,
            self.tasks_killed,
            self.jobs_retried,
            self.retries,
            self.jobs_abandoned,
            self.jobs_unfinished,
            self.transfer_retries,
            self.switch_downtime_s,
            self.link_downtime_s,
            self.wan_link_downtime_s,
            self.goodput_jobs_per_s,
            lat(&self.clean),
            lat(&self.affected),
        )
    }
}

/// Per-server outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerReport {
    /// CPU (cores + uncore) energy, joules.
    pub cpu_energy_j: f64,
    /// DRAM energy, joules.
    pub dram_energy_j: f64,
    /// Platform energy, joules.
    pub platform_energy_j: f64,
    /// Core-time utilization in `[0, 1]`.
    pub utilization: f64,
    /// Tasks completed.
    pub tasks_completed: u64,
    /// Fraction of time per residency band
    /// `(active, wakeup, idle, shallow, deep)` — Fig. 8's five bands.
    pub residency: (f64, f64, f64, f64, f64),
    /// `(deep sleeps, resumes)`.
    pub sleep_counts: (u64, u64),
}

impl ServerReport {
    /// Total energy, joules.
    pub fn energy_j(&self) -> f64 {
        self.cpu_energy_j + self.dram_energy_j + self.platform_energy_j
    }

    /// Snapshot a server at `end`.
    pub fn snapshot(s: &Server, end: SimTime) -> Self {
        let r = s.residency();
        ServerReport {
            cpu_energy_j: s.cpu_energy_j(end),
            dram_energy_j: s.dram_energy_j(end),
            platform_energy_j: s.platform_energy_j(end),
            utilization: s.utilization(end),
            tasks_completed: s.tasks_completed(),
            residency: (
                r.fraction_in(Band::Active, end),
                r.fraction_in(Band::Transition, end),
                r.fraction_in(Band::Idle, end),
                r.fraction_in(Band::ShallowSleep, end),
                r.fraction_in(Band::DeepSleep, end),
            ),
            sleep_counts: s.sleep_counts(),
        }
    }
}

/// Network-side outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct NetworkReport {
    /// Total switch energy, joules.
    pub switch_energy_j: f64,
    /// Mean switch power over the run, watts.
    pub mean_switch_power_w: f64,
    /// Flows admitted.
    pub flows: u64,
    /// Packets forwarded.
    pub packets_forwarded: u64,
    /// Packets dropped.
    pub packets_dropped: u64,
    /// Topology display name.
    pub topology: String,
}

/// Sampled time series of a run.
#[derive(Debug, Clone)]
pub struct SeriesReport {
    /// Awake (non-deep-sleep) servers per sample (Fig. 4).
    pub active_servers: Vec<f64>,
    /// Jobs in flight per sample (Fig. 4).
    pub active_jobs: Vec<f64>,
    /// Total server power per sample, watts.
    pub server_power_w: Vec<f64>,
    /// Total switch power per sample, watts (empty without a network).
    pub switch_power_w: Vec<f64>,
    /// CPU (package) power of server 0 per sample, watts (Fig. 12).
    pub cpu0_power_w: Vec<f64>,
    /// Sampling period.
    pub period: SimDuration,
}

/// The complete outcome of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Simulated horizon.
    pub duration: SimDuration,
    /// Jobs submitted.
    pub jobs_submitted: u64,
    /// Jobs completed (latency-measured).
    pub jobs_completed: u64,
    /// Job latency summary.
    pub latency: LatencyStats,
    /// Empirical CDF points of job latency (Fig. 11b).
    pub latency_cdf: Vec<(f64, f64)>,
    /// Per-server outcomes.
    pub servers: Vec<ServerReport>,
    /// Network outcome, if a network was simulated.
    pub network: Option<NetworkReport>,
    /// Sampled series.
    pub series: SeriesReport,
    /// Engine events processed.
    pub events_processed: u64,
    /// Tasks that waited in the global queue.
    pub global_queue_tasks: u64,
    /// Resilience section — `Some` only for fault-injected runs (a run
    /// with no fault plan, or an empty one, omits it entirely so its JSON
    /// stays byte-identical to a fault-free build).
    pub resilience: Option<ResilienceReport>,
    /// Wall-clock seconds the run took. Deliberately excluded from
    /// [`to_json`](SimReport::to_json): exported artifacts stay bitwise
    /// identical across machines and thread counts.
    pub wall_s: f64,
}

impl SimReport {
    /// Total server energy, joules.
    pub fn server_energy_j(&self) -> f64 {
        self.servers.iter().map(|s| s.energy_j()).sum()
    }

    /// Total CPU energy, joules.
    pub fn cpu_energy_j(&self) -> f64 {
        self.servers.iter().map(|s| s.cpu_energy_j).sum()
    }

    /// Total DRAM energy, joules.
    pub fn dram_energy_j(&self) -> f64 {
        self.servers.iter().map(|s| s.dram_energy_j).sum()
    }

    /// Total platform energy, joules.
    pub fn platform_energy_j(&self) -> f64 {
        self.servers.iter().map(|s| s.platform_energy_j).sum()
    }

    /// Mean server-farm power, watts.
    pub fn mean_server_power_w(&self) -> f64 {
        self.server_energy_j() / self.duration.as_secs_f64()
    }

    /// Total energy including switches, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.server_energy_j() + self.network.as_ref().map_or(0.0, |n| n.switch_energy_j)
    }

    /// Engine events per wall-clock second (0 when the wall clock was not
    /// measured or the run was instantaneous).
    pub fn events_per_sec(&self) -> f64 {
        if self.wall_s > 0.0 {
            self.events_processed as f64 / self.wall_s
        } else {
            0.0
        }
    }

    /// Mean cluster utilization across servers.
    pub fn mean_utilization(&self) -> f64 {
        if self.servers.is_empty() {
            return 0.0;
        }
        self.servers.iter().map(|s| s.utilization).sum::<f64>() / self.servers.len() as f64
    }

    /// Renders a compact human-readable summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        s.push_str(&format!(
            "jobs: {}/{} completed | latency mean {:.3} ms p90 {:.3} ms p95 {:.3} ms\n",
            self.jobs_completed,
            self.jobs_submitted,
            self.latency.mean * 1e3,
            self.latency.p90 * 1e3,
            self.latency.p95 * 1e3,
        ));
        s.push_str(&format!(
            "energy: servers {:.1} kJ (cpu {:.1} / dram {:.1} / platform {:.1})",
            self.server_energy_j() / 1e3,
            self.cpu_energy_j() / 1e3,
            self.dram_energy_j() / 1e3,
            self.platform_energy_j() / 1e3,
        ));
        if let Some(n) = &self.network {
            s.push_str(&format!(
                " | switches {:.1} kJ ({:.1} W mean, {})",
                n.switch_energy_j / 1e3,
                n.mean_switch_power_w,
                n.topology
            ));
        }
        s.push('\n');
        if let Some(r) = &self.resilience {
            s.push_str(&format!(
                "resilience: availability {:.4} | {} faults, {} tasks killed, {} retries, {} jobs abandoned\n",
                r.availability, r.faults_injected, r.tasks_killed, r.retries, r.jobs_abandoned,
            ));
        }
        if self.wall_s > 0.0 {
            s.push_str(&format!(
                "engine: {} events in {:.3} s wall ({:.0} events/s)\n",
                self.events_processed,
                self.wall_s,
                self.events_per_sec(),
            ));
        }
        s
    }

    /// Serializes the headline numbers as a small JSON object (hand-rolled;
    /// see DESIGN.md §3 for why no serde).
    pub fn to_json(&self) -> String {
        let net = match &self.network {
            Some(n) => format!(
                r#"{{"switch_energy_j":{:.3},"mean_switch_power_w":{:.3},"flows":{},"packets_forwarded":{},"packets_dropped":{},"topology":"{}"}}"#,
                n.switch_energy_j,
                n.mean_switch_power_w,
                n.flows,
                n.packets_forwarded,
                n.packets_dropped,
                n.topology
            ),
            None => "null".to_string(),
        };
        let res = match &self.resilience {
            Some(r) => format!(r#","resilience":{}"#, r.to_json()),
            None => String::new(),
        };
        format!(
            r#"{{"duration_s":{:.3},"jobs_submitted":{},"jobs_completed":{},"latency":{{"mean_s":{:.6},"p50_s":{:.6},"p90_s":{:.6},"p95_s":{:.6},"p99_s":{:.6}}},"server_energy_j":{:.3},"cpu_energy_j":{:.3},"dram_energy_j":{:.3},"platform_energy_j":{:.3},"network":{},"events":{}{}}}"#,
            self.duration.as_secs_f64(),
            self.jobs_submitted,
            self.jobs_completed,
            self.latency.mean,
            self.latency.p50,
            self.latency.p90,
            self.latency.p95,
            self.latency.p99,
            self.server_energy_j(),
            self.cpu_energy_j(),
            self.dram_energy_j(),
            self.platform_energy_j(),
            net,
            self.events_processed,
            res,
        )
    }
}

/// Metrics accumulated while a simulation runs.
#[derive(Debug)]
pub struct Metrics {
    /// Completed-job latencies (seconds).
    pub latency: SampleSet,
    /// Awake-server samples.
    pub active_servers: TimeSeries,
    /// In-flight-job samples.
    pub active_jobs: TimeSeries,
    /// Server power samples.
    pub server_power: TimeSeries,
    /// Switch power samples.
    pub switch_power: TimeSeries,
    /// Server-0 CPU power samples.
    pub cpu0_power: TimeSeries,
}

impl Metrics {
    /// Creates metrics sampling at `period`.
    pub fn new(period: SimDuration) -> Self {
        Metrics {
            latency: SampleSet::with_capacity(262_144),
            active_servers: TimeSeries::new(period),
            active_jobs: TimeSeries::new(period),
            server_power: TimeSeries::new(period),
            switch_power: TimeSeries::new(period),
            cpu0_power: TimeSeries::new(period),
        }
    }

    /// Closes all series at `end` and builds the series report.
    pub fn finish(mut self, end: SimTime) -> (SampleSet, SeriesReport) {
        let period = self.active_servers.interval();
        self.active_servers.finish(end);
        self.active_jobs.finish(end);
        self.server_power.finish(end);
        self.switch_power.finish(end);
        self.cpu0_power.finish(end);
        let series = SeriesReport {
            active_servers: self.active_servers.values().to_vec(),
            active_jobs: self.active_jobs.values().to_vec(),
            server_power_w: self.server_power.values().to_vec(),
            switch_power_w: self.switch_power.values().to_vec(),
            cpu0_power_w: self.cpu0_power.values().to_vec(),
            period,
        };
        (self.latency, series)
    }
}

/// Builds the latency part of a report from the collected samples.
pub fn latency_report(samples: &SampleSet) -> (LatencyStats, Vec<(f64, f64)>) {
    (LatencyStats::from_samples(samples), samples.cdf_points())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stats_from_uniform() {
        let mut s = SampleSet::unbounded();
        for i in 1..=100 {
            s.record(i as f64 / 1000.0);
        }
        let (stats, cdf) = latency_report(&s);
        assert_eq!(stats.count, 100);
        assert!((stats.p50 - 0.050).abs() < 1e-9);
        assert!((stats.p90 - 0.090).abs() < 1e-9);
        assert!((stats.max - 0.100).abs() < 1e-9);
        assert_eq!(cdf.len(), 100);
    }

    #[test]
    fn empty_latency_is_zeroed() {
        let s = SampleSet::unbounded();
        let (stats, cdf) = latency_report(&s);
        assert_eq!(stats.count, 0);
        assert_eq!(stats.p95, 0.0);
        assert!(cdf.is_empty());
    }

    #[test]
    fn metrics_finish_produces_aligned_series() {
        let mut m = Metrics::new(SimDuration::from_secs(1));
        m.active_jobs.observe(SimTime::ZERO, 2.0);
        m.server_power.observe(SimTime::ZERO, 100.0);
        let (_, series) = m.finish(SimTime::from_secs(3));
        assert_eq!(series.active_jobs, vec![2.0, 2.0, 2.0, 2.0]);
        assert_eq!(series.server_power_w.len(), 4);
        assert_eq!(series.period, SimDuration::from_secs(1));
    }
}
