//! The driver's network bundle: topology + router + flow/packet models +
//! switch power devices, with the index structures the event loop needs.

// Switch/port index maps are keyed lookups only — never iterated (lint
// D001): the event loop resolves node → device and port → link by key.
#[allow(clippy::disallowed_types)]
use std::collections::HashMap;
use std::sync::Arc;

use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::FlowNet;
use holdcsim_network::ids::{LinkId, NodeId};
use holdcsim_network::packet::PacketNet;
use holdcsim_network::routing::{ecmp_bucket, Route, Router};
use holdcsim_network::switch::SwitchDevice;
use holdcsim_network::topologies::{
    bcube, camcube, fat_tree, flattened_butterfly, star, BuiltTopology,
};
use holdcsim_network::topology::{NodeKind, Topology};
use holdcsim_server::server::ServerId;

use crate::config::{CommModel, NetworkConfig, TopologySpec};

/// The switch-side `(switch index, port)` endpoints of one link, by value
/// (a link touches at most two switches). Returned from
/// [`NetState::switch_ports_of_link`] so wake paths iterate endpoints
/// without a per-call allocation or a borrow on the [`NetState`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkPorts {
    buf: [(usize, u32); 2],
    len: u8,
}

impl LinkPorts {
    fn push(&mut self, p: (usize, u32)) {
        self.buf[self.len as usize] = p;
        self.len += 1;
    }

    /// The endpoints as a slice.
    pub fn as_slice(&self) -> &[(usize, u32)] {
        &self.buf[..self.len as usize]
    }

    /// Number of switch-side endpoints (0–2).
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` if neither end of the link is a switch.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The first endpoint, if any.
    pub fn first(&self) -> Option<(usize, u32)> {
        self.as_slice().first().copied()
    }
}

impl IntoIterator for LinkPorts {
    type Item = (usize, u32);
    type IntoIter = std::iter::Take<std::array::IntoIter<(usize, u32), 2>>;

    fn into_iter(self) -> Self::IntoIter {
        self.buf.into_iter().take(self.len as usize)
    }
}

/// Everything network-side, owned by the simulation driver.
#[derive(Debug)]
#[allow(clippy::disallowed_types)] // point-lookup indices; never iterated
pub struct NetState {
    /// The graph.
    pub topology: Topology,
    /// Host NIC of each server (`hosts[i]` serves `ServerId(i)`).
    pub hosts: Vec<NodeId>,
    /// Shortest-path router with distance cache.
    pub router: Router,
    /// Flow-level model (present in both comm modes; only used in Flow).
    pub flows: FlowNet,
    /// Packet-level model.
    pub packets: PacketNet,
    /// Switch power devices, parallel to `topology.switches()`.
    pub switches: Vec<SwitchDevice>,
    /// Map from switch node to index into `switches`.
    pub switch_index: HashMap<NodeId, usize>,
    /// Communication granularity.
    pub comm: CommModel,
    /// LPI hold time, if enabled.
    pub lpi_hold: Option<SimDuration>,
    /// Idle ports use ALR rate reduction instead of LPI.
    pub use_alr: bool,
    /// Ingress request/response sizes, if front-end traffic is modeled.
    pub ingress_bytes: Option<(u64, u64)>,
    /// Topology display name.
    pub name: String,
    /// Reverse map: `(switch index, port)` → the link on that port.
    pub port_link: HashMap<(usize, u32), LinkId>,
    /// Deadline of the furthest-out `LpiCheck` event armed per switch
    /// port (packet mode coalesces per-port idle checks to at most one
    /// outstanding timer; see the driver's `schedule_lpi_check`).
    pub lpi_armed: Vec<Vec<SimTime>>,
    /// Fault mask: `down_nodes[n]` marks node `n` (a failed switch)
    /// unusable for routing.
    pub down_nodes: Vec<bool>,
    /// Fault mask: `down_links[l]` marks fabric link `l` unusable.
    pub down_links: Vec<bool>,
    /// Number of currently-down fabric components. Non-zero switches
    /// [`NetState::route_between`] to the masked (uncached) router path.
    pub fabric_down: u32,
}

impl NetState {
    /// ECMP spreading ways for inter-server routes: distinct seeds map to
    /// at most this many route choices per server pair (covering the core
    /// multiplicity of fat trees up to k = 8), which bounds the router's
    /// shared-route cache at `hosts² × 16` entries and lets steady-state
    /// transfers hit it quickly.
    pub const ECMP_WAYS: u64 = 16;

    /// Builds the network per `cfg`, sized to cover `server_count` hosts.
    ///
    /// # Panics
    ///
    /// Panics if the requested topology yields fewer hosts than servers.
    #[allow(clippy::disallowed_types)] // constructs the point-lookup indices
    pub fn build(now: SimTime, cfg: &NetworkConfig, server_count: usize) -> Self {
        let built: BuiltTopology = match cfg.topology {
            TopologySpec::FatTree { k } => fat_tree(k, cfg.link),
            TopologySpec::FlattenedButterfly {
                k,
                hosts_per_switch,
            } => flattened_butterfly(k, hosts_per_switch, cfg.link),
            TopologySpec::BCube { n, levels } => bcube(n, levels, cfg.link),
            TopologySpec::CamCube { x, y, z } => camcube(x, y, z, cfg.link),
            TopologySpec::Star => star(server_count.max(1), cfg.link),
        };
        assert!(
            built.hosts.len() >= server_count,
            "topology {} provides {} hosts for {} servers",
            built.name,
            built.hosts.len(),
            server_count
        );
        let topology = built.topology;
        let mut switches = Vec::new();
        let mut switch_index = HashMap::new();
        for &sw in topology.switches() {
            let NodeKind::Switch {
                linecards,
                ports_per_card,
            } = topology.kind(sw)
            else {
                unreachable!("switch list contains only switches")
            };
            switch_index.insert(sw, switches.len());
            switches.push(SwitchDevice::new(
                now,
                sw,
                linecards,
                ports_per_card,
                cfg.switch_profile.clone(),
            ));
        }
        let mut port_link = HashMap::new();
        for (i, l) in topology.links().iter().enumerate() {
            for p in [l.a, l.b] {
                if let Some(&sw) = switch_index.get(&p.node) {
                    port_link.insert((sw, p.port), LinkId(i as u32));
                }
            }
        }
        let mut router = Router::new();
        // Cover the whole bounded route key space (hosts² × ECMP ways)
        // when it fits in memory, so sustained all-pairs traffic cannot
        // thrash the shared-route cache; past ~4M entries (≥ 512 hosts)
        // fall back to the capped wholesale-drop behavior.
        let hosts_n = built.hosts.len() as u64;
        let key_space = hosts_n
            .saturating_mul(hosts_n)
            .saturating_mul(Self::ECMP_WAYS)
            .min(1 << 22);
        router.set_route_cache_cap(key_space as usize);
        let flows = FlowNet::with_solver(&topology, cfg.flow_solver);
        let buffer = match cfg.comm {
            CommModel::Packet { buffer_bytes, .. } => buffer_bytes,
            CommModel::Flow => 1 << 20,
        };
        let packets = PacketNet::new(&topology, buffer);
        let lpi_armed = switches
            .iter()
            .map(|sw| vec![SimTime::ZERO; sw.port_count()])
            .collect();
        let down_nodes = vec![false; topology.node_count()];
        let down_links = vec![false; topology.links().len()];
        NetState {
            hosts: built.hosts,
            router,
            flows,
            packets,
            switches,
            switch_index,
            comm: cfg.comm,
            lpi_hold: cfg.lpi_hold,
            use_alr: cfg.use_alr,
            ingress_bytes: cfg.ingress_bytes,
            name: built.name,
            port_link,
            lpi_armed,
            down_nodes,
            down_links,
            fabric_down: 0,
            topology,
        }
    }

    /// The host NIC of `server`.
    pub fn host_of(&self, server: ServerId) -> NodeId {
        self.hosts[server.0 as usize]
    }

    /// Routes between two servers' hosts, ECMP-spread by `seed`.
    ///
    /// The seed is folded into one of [`NetState::ECMP_WAYS`] buckets
    /// (like a switch hashing the flow tuple into a bounded next-hop
    /// table), so the router's shared-route cache serves steady-state
    /// transfers without a path walk or a `Route` allocation.
    pub fn route_between(&mut self, a: ServerId, b: ServerId, seed: u64) -> Option<Arc<Route>> {
        let (ha, hb) = (self.host_of(a), self.host_of(b));
        if self.fabric_down > 0 {
            // Masked BFS on the surviving fabric; uncached because fault
            // windows are transient — the caller owns the `Arc`.
            return self
                .router
                .route_avoiding(
                    &self.topology,
                    ha,
                    hb,
                    ecmp_bucket(seed, Self::ECMP_WAYS),
                    &self.down_nodes,
                    &self.down_links,
                )
                .map(Arc::new);
        }
        self.router
            .route_shared(&self.topology, ha, hb, ecmp_bucket(seed, Self::ECMP_WAYS))
    }

    /// Routes between two host NICs over the surviving fabric only (fault
    /// reroutes re-plan from in-flight routes, whose endpoints are hosts,
    /// not servers). Returns `None` when no surviving path exists.
    pub fn route_hosts_avoiding(
        &mut self,
        hs: NodeId,
        hd: NodeId,
        seed: u64,
    ) -> Option<Arc<Route>> {
        self.router
            .route_avoiding(
                &self.topology,
                hs,
                hd,
                ecmp_bucket(seed, Self::ECMP_WAYS),
                &self.down_nodes,
                &self.down_links,
            )
            .map(Arc::new)
    }

    /// Marks `node` down (`true`) or back up (`false`), dropping the route
    /// caches. Returns `false` if the mask already had that state (the
    /// transition is a no-op and should be ignored by the caller).
    pub fn set_node_down(&mut self, node: NodeId, down: bool) -> bool {
        let slot = &mut self.down_nodes[node.0 as usize];
        if *slot == down {
            return false;
        }
        *slot = down;
        self.fabric_down = if down {
            self.fabric_down + 1
        } else {
            self.fabric_down - 1
        };
        self.router.clear_cache();
        true
    }

    /// Marks fabric link `link` down/up; same contract as
    /// [`NetState::set_node_down`].
    pub fn set_link_down(&mut self, link: LinkId, down: bool) -> bool {
        let slot = &mut self.down_links[link.0 as usize];
        if *slot == down {
            return false;
        }
        *slot = down;
        self.fabric_down = if down {
            self.fabric_down + 1
        } else {
            self.fabric_down - 1
        };
        self.router.clear_cache();
        true
    }

    /// `true` if `route` traverses any currently-down node or link.
    pub fn route_is_dead(&self, route: &Route) -> bool {
        route.nodes.iter().any(|n| self.down_nodes[n.0 as usize])
            || route.links.iter().any(|l| self.down_links[l.0 as usize])
    }

    /// Switch-side `(switch index, port)` endpoints of `link`, by value
    /// (allocation-free; the wake paths call this per link per event).
    pub fn switch_ports_of_link(&self, link: LinkId) -> LinkPorts {
        let l = self.topology.link(link);
        let mut ports = LinkPorts::default();
        for p in [l.a, l.b] {
            if let Some(&i) = self.switch_index.get(&p.node) {
                ports.push((i, p.port));
            }
        }
        ports
    }

    /// Wakes the switch ports at both ends of `link` for transmission,
    /// returning the largest wake latency among them.
    pub fn wake_link(&mut self, now: SimTime, link: LinkId) -> SimDuration {
        let mut worst = SimDuration::ZERO;
        for (sw, port) in self.switch_ports_of_link(link) {
            let d = self.switches[sw].wake_for_tx(now, port);
            worst = worst.max(d);
        }
        worst
    }

    /// Network wake cost of placing work on `dst` given data sources
    /// `srcs`: the number of sleeping switches (no active port), plus a
    /// small charge per LPI port along the routes, plus a tiny distance
    /// term so nearer servers win ties (§IV-D's cost).
    pub fn wake_cost(&mut self, srcs: &[ServerId], dst: ServerId, seed: u64) -> f64 {
        let mut cost = 0.0;
        for &src in srcs {
            if src == dst {
                continue;
            }
            let Some(route) = self.route_between(src, dst, seed) else {
                continue;
            };
            cost += 0.02 * route.hops() as f64;
            for node in &route.nodes {
                if let Some(&sw) = self.switch_index.get(node) {
                    if !self.switches[sw].any_port_active() {
                        cost += 1.0;
                    }
                }
            }
            for link in &route.links {
                for (sw, port) in self.switch_ports_of_link(*link) {
                    if self.switches[sw].wake_cost(port) > SimDuration::ZERO {
                        cost += 0.01;
                    }
                }
            }
        }
        cost
    }

    /// The switch-side `(switch index, port, link)` of `server`'s access
    /// link, if its first-hop neighbor is a switch.
    pub fn access_port(&self, server: ServerId) -> Option<(usize, u32, LinkId)> {
        let host = self.host_of(server);
        let (_, link) = self.topology.neighbors(host).next()?;
        let (swi, port) = self.switch_ports_of_link(link).first()?;
        Some((swi, port, link))
    }

    /// Instantaneous total switch power.
    pub fn switch_power_w(&self) -> f64 {
        self.switches.iter().map(|s| s.power_w()).sum()
    }

    /// Total switch energy through `now`.
    pub fn switch_energy_j(&self, now: SimTime) -> f64 {
        self.switches.iter().map(|s| s.energy_j(now)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_power::switch_profile::SwitchPowerProfile;

    fn fat_tree_cfg() -> NetworkConfig {
        NetworkConfig::fat_tree(4)
    }

    #[test]
    fn builds_fat_tree_with_devices() {
        let net = NetState::build(SimTime::ZERO, &fat_tree_cfg(), 16);
        assert_eq!(net.hosts.len(), 16);
        assert_eq!(net.switches.len(), 20);
        assert!(net.switch_power_w() > 0.0);
    }

    #[test]
    #[should_panic(expected = "provides")]
    fn too_many_servers_rejected() {
        let _ = NetState::build(SimTime::ZERO, &fat_tree_cfg(), 17);
    }

    #[test]
    fn star_sizes_to_server_count() {
        let cfg = NetworkConfig::validation_star();
        let net = NetState::build(SimTime::ZERO, &cfg, 24);
        assert_eq!(net.hosts.len(), 24);
        assert_eq!(net.switches.len(), 1);
        let p = net.switch_power_w();
        assert!((p - 20.22).abs() < 1e-9, "power {p}");
    }

    #[test]
    fn link_ports_map_to_switch_side() {
        let net = NetState::build(SimTime::ZERO, &NetworkConfig::validation_star(), 4);
        // Host links touch exactly one switch.
        for l in 0..net.topology.links().len() {
            let ports = net.switch_ports_of_link(LinkId(l as u32));
            assert_eq!(ports.len(), 1);
        }
    }

    #[test]
    fn wake_cost_counts_sleeping_switches() {
        let mut net = NetState::build(SimTime::ZERO, &fat_tree_cfg(), 16);
        let srcs = [ServerId(0)];
        let base = net.wake_cost(&srcs, ServerId(15), 1);
        // All switches awake: only the small distance term remains
        // (cross-pod route: 6 hops x 0.02).
        assert!(base < 0.2, "all awake, cost {base}");
        // Put every port of every switch into LPI: switches count as asleep.
        let t = SimTime::from_secs(1);
        for sw in &mut net.switches {
            for p in 0..sw.port_count() as u32 {
                sw.enter_lpi(t, p);
            }
        }
        let asleep = net.wake_cost(&srcs, ServerId(15), 1);
        assert!(
            asleep >= 3.0,
            "cross-pod route wakes several switches: {asleep}"
        );
    }

    #[test]
    fn wake_link_returns_worst_latency() {
        let cfg = NetworkConfig {
            switch_profile: SwitchPowerProfile::datacenter_48port(),
            ..NetworkConfig::validation_star()
        };
        let mut net = NetState::build(SimTime::ZERO, &cfg, 4);
        let t = SimTime::from_secs(1);
        for p in 0..4 {
            net.switches[0].enter_lpi(t, p);
        }
        let d = net.wake_link(SimTime::from_secs(2), LinkId(0));
        assert_eq!(d, SimDuration::from_micros(5));
        // Idempotent: second wake is free.
        assert_eq!(
            net.wake_link(SimTime::from_secs(2), LinkId(0)),
            SimDuration::ZERO
        );
    }
}
