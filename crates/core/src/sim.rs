//! The simulation driver: the [`Datacenter`] event model tying workload,
//! servers, scheduling, controllers, and the network together, and the
//! [`Simulation`] front end that runs it and produces a [`SimReport`].

use std::collections::BTreeSet;
use std::sync::Arc;

use holdcsim_des::engine::{Context, Engine, Model};
use holdcsim_des::rng::SimRng;
use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::stats::SampleSet;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_faults::{FaultEvent, FaultKind, RetryPolicy, FAULT_STREAM};
use holdcsim_network::flow::CompletedFlow;
use holdcsim_network::ids::{FlowId, LinkId, NodeId, PacketId};
use holdcsim_network::packet::{Packet, TxOutcome};
use holdcsim_network::routing::Route;
use holdcsim_obs::{EventInfo, ObsArtifacts, Observer, ProbeSource, TraceEvent};
use holdcsim_sched::geo::{route_site, GeoPolicy};
use holdcsim_sched::policy::{
    ClusterView, GlobalPolicy, LeastLoaded, NetworkAware, NetworkCost, NoNetworkCost, PackFirst,
    Random, RoundRobin,
};
use holdcsim_sched::pools::{PoolAction, PoolManager};
use holdcsim_sched::provisioning::{ProvisionAction, ProvisioningController};
use holdcsim_sched::queue::GlobalQueue;
use holdcsim_server::policy::SleepPolicy;
use holdcsim_server::server::{Effect, EffectBuf, Server, ServerConfig, ServerId};
use holdcsim_server::task::TaskHandle;
use holdcsim_workload::arrivals::{ArrivalProcess, Mmpp2Arrivals, PoissonArrivals, TraceArrivals};
use holdcsim_workload::ids::{JobId, TaskId};

use crate::config::{ArrivalConfig, CommModel, ControllerConfig, PolicyKind, SimConfig};
use crate::job::{JobState, JobTable};
use crate::netstate::NetState;
use crate::report::{
    latency_report, Metrics, NetworkReport, ResilienceReport, ServerReport, SimReport,
};

/// Packet retransmission backoff after a tail-drop.
const RETRY_DELAY: SimDuration = SimDuration::from_millis(1);

/// The event alphabet of the data-center model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DcEvent {
    /// One-time setup (arms initial timers, LPI checks).
    Init,
    /// The next job arrives from the front end.
    JobArrival,
    /// A task finished on a server core.
    TaskComplete {
        /// The server.
        server: ServerId,
        /// The core index.
        core: u32,
        /// The task expected to be there (sanity check).
        task: TaskId,
        /// Crash generation at scheduling time: a crash bumps the
        /// server's generation, orphaning every in-flight completion
        /// (always 0 when fault injection is off).
        gen: u32,
    },
    /// A server's idle delay timer fired.
    ServerTimer {
        /// The server.
        server: ServerId,
        /// Timer generation (stale generations are ignored).
        gen: u64,
    },
    /// A server suspend/resume transition completed.
    ServerTransition {
        /// The server.
        server: ServerId,
        /// Crash generation at scheduling time (see
        /// [`DcEvent::TaskComplete::gen`]).
        gen: u32,
    },
    /// The flow network's earliest projected completion is due. A single
    /// such event is kept armed at [`holdcsim_network::flow::FlowNet::
    /// next_due`]; per-flow retiming happens inside the flow network's
    /// completion heap (rate deltas update heap entries, not calendar
    /// events), so a firing that finds nothing due is a cheap no-op.
    FlowsAdvance,
    /// A flow whose start was delayed by switch wake latency is admitted.
    FlowAdmit {
        /// The raw flow id.
        flow: u64,
    },
    /// A packet arrived at its next node.
    PacketArrive {
        /// Slot in the packet table.
        slot: usize,
    },
    /// Retransmit a dropped packet from its current node.
    PacketRetry {
        /// Slot in the packet table.
        slot: usize,
    },
    /// A switch port's LPI hold expired; try to idle it.
    LpiCheck {
        /// Switch index.
        switch: usize,
        /// Port on that switch.
        port: u32,
    },
    /// Cluster controller sampling tick.
    ControllerTick,
    /// Statistics sampling tick.
    StatsSample,
    /// A job forwarded from another federation site finished its WAN
    /// transfer and arrives here (federated runs only; the state was
    /// parked in the remote inbox by [`Datacenter::accept_remote_job`]).
    RemoteJobArrive {
        /// Slot in the remote inbox.
        slot: u64,
    },
    /// A scheduled fault fires (index into the materialized schedule).
    FaultInject {
        /// Schedule index.
        fault: u32,
    },
    /// A scheduled recovery fires (index into the materialized schedule).
    FaultRecover {
        /// Schedule index.
        fault: u32,
    },
    /// A failed task's retry backoff expired; re-place it.
    RetryDispatch {
        /// Slot in the retry table.
        slot: u64,
    },
}

impl TraceEvent for DcEvent {
    const KIND_NAMES: &'static [&'static str] = &[
        "Init",
        "JobArrival",
        "TaskComplete",
        "ServerTimer",
        "ServerTransition",
        "FlowsAdvance",
        "FlowAdmit",
        "PacketArrive",
        "PacketRetry",
        "LpiCheck",
        "ControllerTick",
        "StatsSample",
        "RemoteJobArrive",
        "FaultInject",
        "FaultRecover",
        "RetryDispatch",
    ];

    #[inline]
    fn kind(&self) -> u8 {
        match self {
            DcEvent::Init => 0,
            DcEvent::JobArrival => 1,
            DcEvent::TaskComplete { .. } => 2,
            DcEvent::ServerTimer { .. } => 3,
            DcEvent::ServerTransition { .. } => 4,
            DcEvent::FlowsAdvance => 5,
            DcEvent::FlowAdmit { .. } => 6,
            DcEvent::PacketArrive { .. } => 7,
            DcEvent::PacketRetry { .. } => 8,
            DcEvent::LpiCheck { .. } => 9,
            DcEvent::ControllerTick => 10,
            DcEvent::StatsSample => 11,
            DcEvent::RemoteJobArrive { .. } => 12,
            DcEvent::FaultInject { .. } => 13,
            DcEvent::FaultRecover { .. } => 14,
            DcEvent::RetryDispatch { .. } => 15,
        }
    }

    fn info(&self) -> EventInfo {
        let (a, b) = match *self {
            DcEvent::Init
            | DcEvent::JobArrival
            | DcEvent::FlowsAdvance
            | DcEvent::ControllerTick
            | DcEvent::StatsSample => (0, 0),
            // The crash generation stays out of (a, b): faults-off traces
            // must fingerprint identically to pre-fault builds.
            DcEvent::TaskComplete { server, task, .. } => {
                (server.0 as u64, (task.job.0 << 16) | task.index as u64)
            }
            DcEvent::ServerTimer { server, gen } => (server.0 as u64, gen),
            DcEvent::ServerTransition { server, .. } => (server.0 as u64, 0),
            DcEvent::FlowAdmit { flow } => (flow, 0),
            DcEvent::PacketArrive { slot } => (slot as u64, 0),
            DcEvent::PacketRetry { slot } => (slot as u64, 0),
            DcEvent::LpiCheck { switch, port } => (switch as u64, port as u64),
            DcEvent::RemoteJobArrive { slot } => (slot, 0),
            DcEvent::FaultInject { fault } => (fault as u64, 0),
            DcEvent::FaultRecover { fault } => (fault as u64, 0),
            DcEvent::RetryDispatch { slot } => (slot, 0),
        };
        EventInfo {
            kind: self.kind(),
            a,
            b,
        }
    }
}

#[derive(Debug)]
struct PacketSt {
    packet: Packet,
    /// Slot in `transfer_slots` for the DAG edge this packet belongs to.
    xfer: u64,
}

/// One in-flight flow-model transfer (slot key = raw flow id).
#[derive(Debug)]
struct FlowSt {
    /// The (shared) route the flow occupies.
    route: Arc<Route>,
    /// Admission state while the flow waits out switch wake latency:
    /// `(src host, dst host, bytes)`, taken on admission.
    pending: Option<(NodeId, NodeId, u64)>,
    /// Slot in `dispatch_slots` for the consumer task.
    dispatch: u64,
    /// Original transfer size: a fabric fault restarts the flow from
    /// scratch on a surviving route (partial progress is lost).
    bytes: u64,
    /// The solver's own key for the admitted flow (`None` while
    /// pending). Wake-delayed admissions make the solver's key sequence
    /// diverge from `flow_slots`, so removals must use this key.
    net_key: Option<u64>,
}

/// One in-flight packet-model transfer (a DAG edge's packet burst).
#[derive(Debug)]
struct TransferSt {
    /// Packets still in flight on this edge.
    remaining: u64,
    /// Slot in `dispatch_slots` for the consumer task.
    dispatch: u64,
}

/// The federation-facing side of a site's driver: dispatch inputs the
/// coordinator refreshes (load snapshot, WAN latencies) and the outbox of
/// jobs routed off-site. Attached by `holdcsim-cluster`'s `Federation`;
/// standalone simulations never carry one, and a federated site whose
/// jobs all stay home retraces the standalone trajectory event for event
/// (the routing decision is a pure function — no RNG, no events).
#[derive(Debug)]
pub struct FedPort {
    /// This site's index in the federation.
    pub site: u32,
    /// The geo dispatch policy.
    pub geo: GeoPolicy,
    /// Per-site load snapshot (in-flight jobs per core), refreshed by the
    /// coordinator at window boundaries (and only when it actually
    /// changed) — identically in the serial and parallel arms, so both
    /// trace the same dispatch decisions.
    pub site_loads: Vec<f64>,
    /// Static WAN path latency in seconds from this site to each site.
    pub wan_latency_s: Vec<f64>,
    /// Jobs routed off-site, stamped with their send instant:
    /// `(send time, target site, job state)`. The coordinator drains
    /// these into the WAN at window boundaries, merging all sites'
    /// entries back into global send order.
    pub outbox: Vec<(SimTime, u32, JobState)>,
    /// Jobs forwarded off-site over the run.
    pub forwarded: u64,
}

/// Fault-injection runtime state, boxed onto the driver only when the
/// configuration carries a non-empty [`holdcsim_faults::FaultPlan`] —
/// fault-free runs keep the exact pre-fault layout and trajectory.
#[derive(Debug)]
struct FaultState {
    /// The materialized schedule, ascending by time; `FaultInject` /
    /// `FaultRecover` events carry indexes into it.
    schedule: Vec<FaultEvent>,
    /// Retry/re-dispatch policy for work killed by faults.
    retry: RetryPolicy,
    /// Per-server crash generation: bumped on crash so in-flight
    /// completion/transition events from before the crash are dropped.
    crash_gen: Vec<u32>,
    /// Per-server crash stamp (`Some` while down).
    down_since: Vec<Option<SimTime>>,
    /// Per-switch down stamp (`Some` while down).
    switch_down_since: Vec<Option<SimTime>>,
    /// Per-fabric-link down stamp (`Some` while down).
    link_down_since: Vec<Option<SimTime>>,
    /// Accumulated server downtime (completed outages).
    server_downtime_s: f64,
    /// Accumulated switch downtime (completed outages).
    switch_downtime_s: f64,
    /// Accumulated fabric-link downtime (completed outages).
    link_downtime_s: f64,
    /// Non-recovery fault events that actually hit a live component.
    faults_injected: u64,
    /// Tasks killed by crashes (running, queued, or committed-awaiting-
    /// transfers).
    tasks_killed: u64,
    /// Total task re-dispatch attempts scheduled.
    retries_total: u64,
    /// Distinct jobs that saw at least one retry.
    jobs_retried: u64,
    /// Jobs whose retry budget ran out (they never complete).
    jobs_abandoned: u64,
    /// Transfers restarted because a fabric fault severed their route.
    transfer_retries: u64,
    /// Retries currently waiting out their backoff.
    retries_in_flight: u64,
    /// Backoff-parked retries; `RetryDispatch` events carry the slot.
    retry_slots: SlotWindow<(JobId, u32)>,
    /// Completion latencies of jobs untouched by any fault.
    clean_lat: SampleSet,
    /// Completion latencies of jobs that needed at least one retry.
    affected_lat: SampleSet,
    /// Scratch for task handles killed by a crash (reused across faults).
    scratch_killed: Vec<TaskHandle>,
}

impl FaultState {
    fn new(
        schedule: Vec<FaultEvent>,
        retry: RetryPolicy,
        servers: usize,
        switches: usize,
        links: usize,
    ) -> Self {
        FaultState {
            schedule,
            retry,
            crash_gen: vec![0; servers],
            down_since: vec![None; servers],
            switch_down_since: vec![None; switches],
            link_down_since: vec![None; links],
            server_downtime_s: 0.0,
            switch_downtime_s: 0.0,
            link_downtime_s: 0.0,
            faults_injected: 0,
            tasks_killed: 0,
            retries_total: 0,
            jobs_retried: 0,
            jobs_abandoned: 0,
            transfer_retries: 0,
            retries_in_flight: 0,
            retry_slots: SlotWindow::new(),
            clean_lat: SampleSet::with_capacity(65_536),
            affected_lat: SampleSet::with_capacity(65_536),
            scratch_killed: Vec::new(),
        }
    }
}

#[derive(Debug)]
enum Controller {
    Provisioning {
        ctl: ProvisioningController,
        parked: BTreeSet<ServerId>,
    },
    Pools {
        mgr: PoolManager,
    },
}

/// The complete data-center model driven by the DES engine.
#[derive(Debug)]
pub struct Datacenter {
    cfg: SimConfig,
    rng_workload: SimRng,
    arrivals: Arrivals,
    servers: Vec<Server>,
    jobs: JobTable,
    policy: Box<dyn GlobalPolicy>,
    global_queue: GlobalQueue,
    /// Placement-eligible servers, ascending by id. Maintained
    /// incrementally by controller decisions; never rebuilt per placement.
    eligible: Vec<ServerId>,
    /// `eligible_mask[i]` ⇔ `ServerId(i)` is in `eligible` (O(1) probes).
    eligible_mask: Vec<bool>,
    /// Scratch for the class/free-core-filtered candidate list (reused
    /// across placements; no per-placement allocation).
    scratch_candidates: Vec<ServerId>,
    /// Scratch for a task's data-source servers (reused across placements).
    scratch_srcs: Vec<ServerId>,
    /// Scratch for newly ready task indices (reused across events).
    scratch_ready: Vec<u32>,
    /// Recycled job states: completed jobs return here so arrivals reuse
    /// their DAG and bookkeeping allocations.
    job_pool: Vec<JobState>,
    /// Server-indexed NetworkAware wake-cost table (reused; only entries
    /// for the current candidate set are meaningful).
    cost_scratch: Vec<f64>,
    /// Reusable effect buffer threaded through every server call.
    fx: EffectBuf,
    controller: Option<Controller>,
    net: Option<NetState>,
    next_packet_id: u64,
    /// Live flows, keyed by raw flow id (the window issues the ids):
    /// flow-completion and admission events index instead of hashing.
    flow_slots: SlotWindow<FlowSt>,
    packet_slots: Vec<Option<PacketSt>>,
    free_slots: Vec<usize>,
    /// Outstanding packet bursts per DAG edge; packets carry their slot.
    transfer_slots: SlotWindow<TransferSt>,
    /// Placed tasks awaiting inbound transfers; flows/transfers carry
    /// their slot, so completion never hashes a `(job, task)` key.
    dispatch_slots: SlotWindow<(ServerId, TaskHandle)>,
    /// Scratch for a task's inbound cross-server edges (reused across
    /// placements; no per-transfer allocation).
    scratch_inbound: Vec<(u32, u64, ServerId)>,
    /// Scratch for completions drained from the flow network (reused
    /// across completion events).
    scratch_flow_done: Vec<CompletedFlow>,
    /// Deadline of the earliest outstanding `FlowsAdvance` event: arming
    /// is skipped while an earlier-or-equal check is already scheduled,
    /// so admissions that only push completions *later* enqueue nothing.
    flow_check_armed: SimTime,
    /// Per-server tasks committed but still waiting on inbound transfers.
    committed: Vec<u32>,
    /// Federation attachment (multi-datacenter runs only).
    fed: Option<FedPort>,
    /// Jobs delivered by the WAN but not yet admitted (slot keys ride in
    /// [`DcEvent::RemoteJobArrive`]).
    remote_inbox: SlotWindow<JobState>,
    /// Fault-injection state (only when the config carries a non-empty
    /// plan; `None` keeps fault-free runs bitwise identical).
    faults: Option<Box<FaultState>>,
    metrics: Metrics,
}

#[derive(Debug)]
enum Arrivals {
    Poisson(PoissonArrivals),
    Mmpp(Mmpp2Arrivals),
    Trace(TraceArrivals),
}

impl Arrivals {
    fn next_gap(&mut self, rng: &mut SimRng) -> Option<SimDuration> {
        match self {
            Arrivals::Poisson(p) => p.next_gap(rng),
            Arrivals::Mmpp(p) => p.next_gap(rng),
            Arrivals::Trace(p) => p.next_gap(rng),
        }
    }
}

impl Datacenter {
    fn new(cfg: SimConfig) -> Self {
        assert!(cfg.server_count > 0, "need at least one server");
        assert!(
            !cfg.sleep_policies.is_empty(),
            "need at least one sleep policy"
        );
        let root_rng = SimRng::seed_from(cfg.seed);
        let rng_workload = root_rng.substream(1);
        let now = SimTime::ZERO;
        let servers: Vec<Server> = (0..cfg.server_count)
            .map(|i| {
                let sc = ServerConfig {
                    cores: cfg.cores_per_server,
                    profile: cfg.server_profile.clone(),
                    queue_mode: cfg.queue_mode,
                    policy: cfg.policy_for(i),
                    pstate: cfg.server_profile.pstates.len() - 1,
                    core_speeds: cfg.core_speeds.clone(),
                    sockets: cfg.sockets_per_server,
                };
                Server::new(now, ServerId(i as u32), sc)
            })
            .collect();
        let policy: Box<dyn GlobalPolicy> = match cfg.policy {
            PolicyKind::RoundRobin => Box::new(RoundRobin::new()),
            PolicyKind::LeastLoaded => Box::new(LeastLoaded::new()),
            PolicyKind::PackFirst => Box::new(PackFirst::new()),
            PolicyKind::Random => Box::new(Random::new(cfg.seed ^ 0xD15C0)),
            PolicyKind::NetworkAware => Box::new(NetworkAware::new()),
        };
        let arrivals = match &cfg.arrivals {
            ArrivalConfig::Poisson { rate } => Arrivals::Poisson(PoissonArrivals::new(*rate)),
            ArrivalConfig::Mmpp2 {
                base_rate,
                burst_ratio,
                bursty_fraction,
                mean_bursty_dwell,
            } => Arrivals::Mmpp(Mmpp2Arrivals::with_burstiness(
                *base_rate,
                *burst_ratio,
                *bursty_fraction,
                *mean_bursty_dwell,
            )),
            ArrivalConfig::Trace(times) => Arrivals::Trace(TraceArrivals::new(times.clone())),
        };
        let net = cfg
            .network
            .as_ref()
            .map(|nc| NetState::build(now, nc, cfg.server_count));
        let controller = cfg.controller.as_ref().map(|cc| match cc {
            ControllerConfig::Provisioning { min_load, max_load } => Controller::Provisioning {
                ctl: ProvisioningController::new(*min_load, *max_load, cfg.server_count),
                parked: BTreeSet::new(),
            },
            ControllerConfig::Pools {
                t_wakeup,
                t_sleep,
                sleep_pool_tau,
                initial_active,
            } => {
                let ids: Vec<ServerId> = (0..cfg.server_count as u32).map(ServerId).collect();
                Controller::Pools {
                    mgr: PoolManager::new(
                        &ids,
                        *initial_active,
                        *t_wakeup,
                        *t_sleep,
                        *sleep_pool_tau,
                    ),
                }
            }
        });
        let metrics = Metrics::new(cfg.sample_period);
        // Fault state only materializes for non-empty plans, and draws
        // from a dedicated substream — the workload RNG trajectory (and
        // with it the fault-free run) is untouched either way.
        let faults = cfg.faults.as_ref().filter(|p| !p.is_empty()).map(|p| {
            let frng = root_rng.substream_path(&[FAULT_STREAM]);
            let schedule = p.materialize(cfg.duration, &frng);
            let (switches, links) = net
                .as_ref()
                .map_or((0, 0), |n| (n.switches.len(), n.topology.links().len()));
            Box::new(FaultState::new(
                schedule,
                p.retry,
                cfg.server_count,
                switches,
                links,
            ))
        });
        let mut dc = Datacenter {
            rng_workload,
            arrivals,
            servers,
            jobs: JobTable::new(),
            policy,
            global_queue: GlobalQueue::new(),
            eligible: Vec::new(),
            eligible_mask: vec![false; cfg.server_count],
            scratch_candidates: Vec::new(),
            scratch_srcs: Vec::new(),
            scratch_ready: Vec::new(),
            job_pool: Vec::new(),
            cost_scratch: vec![0.0; cfg.server_count],
            fx: EffectBuf::new(),
            controller,
            net,
            next_packet_id: 0,
            flow_slots: SlotWindow::new(),
            packet_slots: Vec::new(),
            free_slots: Vec::new(),
            transfer_slots: SlotWindow::new(),
            dispatch_slots: SlotWindow::new(),
            scratch_inbound: Vec::new(),
            scratch_flow_done: Vec::new(),
            flow_check_armed: SimTime::ZERO,
            committed: vec![0; cfg.server_count],
            fed: None,
            remote_inbox: SlotWindow::new(),
            faults,
            metrics,
            cfg,
        };
        dc.rebuild_eligible();
        dc
    }

    // ------------------------------------------------------------------
    // Observers (used by reports, tests, and experiment harnesses)
    // ------------------------------------------------------------------

    /// The servers.
    pub fn servers(&self) -> &[Server] {
        &self.servers
    }

    /// Jobs submitted so far.
    pub fn jobs_submitted(&self) -> u64 {
        self.jobs.submitted()
    }

    /// Jobs completed so far.
    pub fn jobs_completed(&self) -> u64 {
        self.jobs.completed()
    }

    /// Jobs currently in flight (submitted, not yet completed).
    pub fn jobs_in_flight(&self) -> usize {
        self.jobs.in_flight()
    }

    /// The configuration this datacenter was built from.
    pub fn config(&self) -> &SimConfig {
        &self.cfg
    }

    // ------------------------------------------------------------------
    // Federation attachment (multi-datacenter runs)
    // ------------------------------------------------------------------

    /// Attaches this site to a federation: job arrivals are geo-routed
    /// through `port` and off-site jobs land in its outbox.
    pub fn attach_federation(&mut self, port: FedPort) {
        assert!(self.fed.is_none(), "federation already attached");
        self.fed = Some(port);
    }

    /// The federation port, if attached.
    pub fn fed_port_mut(&mut self) -> Option<&mut FedPort> {
        self.fed.as_mut()
    }

    /// Jobs this site forwarded off-site.
    pub fn jobs_forwarded(&self) -> u64 {
        self.fed.as_ref().map_or(0, |p| p.forwarded)
    }

    /// Parks a WAN-delivered job in the remote inbox, returning the slot
    /// the coordinator must carry in the matching
    /// [`DcEvent::RemoteJobArrive`] it schedules on this site's calendar.
    pub fn accept_remote_job(&mut self, state: JobState) -> u64 {
        self.remote_inbox.insert(state)
    }

    /// Network state, if simulated.
    pub fn net(&self) -> Option<&NetState> {
        self.net.as_ref()
    }

    /// Cores currently lost to server crashes (the federation
    /// effective-capacity signal; 0 when fault injection is off).
    pub fn down_cores(&self) -> u32 {
        self.faults.as_ref().map_or(0, |f| {
            f.down_since.iter().filter(|d| d.is_some()).count() as u32 * self.cfg.cores_per_server
        })
    }

    /// The next scheduled fault/recovery instant strictly after `now`
    /// (federation coordinators clamp their conservative windows so no
    /// fault lands inside a committed window).
    pub fn next_fault_at(&self, now: SimTime) -> Option<SimTime> {
        let f = self.faults.as_ref()?;
        // The materialized schedule is ascending by time.
        f.schedule
            .iter()
            .map(|ev| SimTime::ZERO + ev.at)
            .find(|&at| at > now)
    }

    /// Servers currently awake (not deep-sleeping or transitioning).
    pub fn awake_servers(&self) -> usize {
        self.servers.iter().filter(|s| s.is_awake()).count()
    }

    /// Total pending (queued + running) tasks plus the global queue.
    pub fn total_pending(&self) -> usize {
        self.servers.iter().map(|s| s.pending()).sum::<usize>() + self.global_queue.len()
    }

    /// Per-server tasks committed by the placer but still waiting on
    /// inbound transfers (indexed by server id) — these hold a core
    /// reservation that capacity checks must honor.
    pub fn committed(&self) -> &[u32] {
        &self.committed
    }

    // ------------------------------------------------------------------
    // Placement
    // ------------------------------------------------------------------

    /// Rebuilds the eligibility set from scratch (initialization and
    /// controller bring-up only; steady-state updates are incremental).
    fn rebuild_eligible(&mut self) {
        self.eligible = match &self.controller {
            Some(Controller::Provisioning { parked, .. }) => (0..self.servers.len() as u32)
                .map(ServerId)
                .filter(|id| !parked.contains(id))
                .collect(),
            Some(Controller::Pools { mgr }) => mgr.active_iter().collect(),
            None => (0..self.servers.len() as u32).map(ServerId).collect(),
        };
        self.eligible_mask.fill(false);
        for &id in &self.eligible {
            self.eligible_mask[id.0 as usize] = true;
        }
    }

    /// Adds or removes one server from the eligibility set, keeping
    /// `eligible` sorted ascending (the order every rebuild produced).
    fn set_eligible(&mut self, id: ServerId, on: bool) {
        let i = id.0 as usize;
        if self.eligible_mask[i] == on {
            return;
        }
        self.eligible_mask[i] = on;
        match self.eligible.binary_search(&id) {
            Ok(pos) if !on => {
                self.eligible.remove(pos);
            }
            Err(pos) if on => {
                self.eligible.insert(pos, id);
            }
            _ => {}
        }
    }

    fn is_eligible(&self, id: ServerId) -> bool {
        self.eligible_mask[id.0 as usize]
    }

    /// Chooses a server for a task whose data sources are `srcs`, honoring
    /// a server-class constraint if the task names one.
    fn select_server(
        &mut self,
        srcs: &[ServerId],
        class: Option<u32>,
        seed: u64,
    ) -> Option<ServerId> {
        let use_gq = self.cfg.use_global_queue;
        // Fast path: no class constraint and no free-core filter means the
        // eligible list can be borrowed as-is (O(1) placement for O(1)
        // policies — the Table I scalability path).
        let needs_filter = use_gq || (class.is_some() && !self.cfg.server_classes.is_empty());
        if needs_filter {
            let Datacenter {
                eligible,
                scratch_candidates,
                servers,
                committed,
                cfg,
                ..
            } = self;
            scratch_candidates.clear();
            scratch_candidates.extend(
                eligible
                    .iter()
                    .copied()
                    .filter(|&id| match (class, cfg.server_classes.is_empty()) {
                        (Some(c), false) => cfg.server_classes[id.0 as usize] == c,
                        _ => true,
                    })
                    .filter(|&id| {
                        if !use_gq {
                            return true;
                        }
                        // Free capacity counts tasks committed to the
                        // server but still awaiting inbound transfers.
                        let s = &servers[id.0 as usize];
                        s.is_awake() && s.busy_cores() + committed[id.0 as usize] < s.core_count()
                    }),
            );
        }
        // Network-aware placement needs per-candidate wake costs; fill the
        // server-indexed scratch table for exactly the candidate set.
        let use_costs = matches!(self.cfg.policy, PolicyKind::NetworkAware) && self.net.is_some();
        if use_costs {
            let n = if needs_filter {
                self.scratch_candidates.len()
            } else {
                self.eligible.len()
            };
            for i in 0..n {
                let id = if needs_filter {
                    self.scratch_candidates[i]
                } else {
                    self.eligible[i]
                };
                let c = self
                    .net
                    .as_mut()
                    .expect("checked above")
                    .wake_cost(srcs, id, seed);
                self.cost_scratch[id.0 as usize] = c;
            }
        }
        let candidates: &[ServerId] = if needs_filter {
            &self.scratch_candidates
        } else {
            &self.eligible
        };
        if candidates.is_empty() {
            return None;
        }
        let view = ClusterView::with_committed(&self.servers, &self.committed);
        if use_costs {
            let probe = CostTable(&self.cost_scratch);
            self.policy.select(&view, candidates, &probe)
        } else {
            self.policy.select(&view, candidates, &NoNetworkCost)
        }
    }

    /// Places (or queues) task `t` of `job`, which just became ready.
    fn place_or_queue(&mut self, ctx: &mut Context<'_, DcEvent>, job: JobId, t: u32) {
        // The source list lives in a reusable scratch buffer; it is taken
        // out for the duration of the call so `select_server` can borrow
        // `self` mutably.
        let mut srcs = std::mem::take(&mut self.scratch_srcs);
        srcs.clear();
        let (handle, class) = {
            let js = self.jobs.get(job);
            let spec = js.dag.task(t);
            let handle = TaskHandle {
                id: TaskId::new(job, t),
                service: spec.service,
                intensity: spec.intensity,
            };
            srcs.extend(
                js.dag
                    .predecessors(t)
                    .iter()
                    .filter_map(|&p| js.assignment(p)),
            );
            (handle, spec.server_class)
        };
        let picked = self.select_server(&srcs, class, job.0 ^ u64::from(t) << 48);
        self.scratch_srcs = srcs;
        match picked {
            Some(sid) => self.assign_and_transfer(ctx, job, t, handle, sid),
            // The class rides along so class-aware pulls are O(1).
            None => self.global_queue.push_classed(ctx.now(), handle, class),
        }
    }

    /// Binds task `t` to `sid`, launches inbound transfers, and dispatches
    /// once (or if) no transfers are needed.
    fn assign_and_transfer(
        &mut self,
        ctx: &mut Context<'_, DcEvent>,
        job: JobId,
        t: u32,
        handle: TaskHandle,
        sid: ServerId,
    ) {
        self.jobs.get_mut(job).assign(t, sid);
        // Inbound edges that actually cross the network (reusable scratch
        // buffer, taken out so `start_transfer` can borrow `self`).
        let mut inbound = std::mem::take(&mut self.scratch_inbound);
        inbound.clear();
        if self.net.is_some() {
            let js = self.jobs.get(job);
            inbound.extend(js.dag.predecessors(t).iter().filter_map(|&p| {
                let bytes = js.dag.edge_bytes(p, t)?;
                let src = js.assignment(p)?;
                (bytes > 0 && src != sid).then_some((p, bytes, src))
            }));
        }
        if inbound.is_empty() {
            self.scratch_inbound = inbound;
            self.dispatch(ctx, sid, handle);
            return;
        }
        self.jobs
            .get_mut(job)
            .add_transfers(t, inbound.len() as u32);
        let dispatch = self.dispatch_slots.insert((sid, handle));
        self.committed[sid.0 as usize] += 1;
        for &(_, bytes, src) in &inbound {
            if !self.start_transfer(ctx, dispatch, job, t, src, sid, bytes) {
                // No surviving route (mid-fault only): drop the dispatch
                // and push the task through the retry path.
                if let Some((j, tt)) = self.kill_dispatch(ctx, dispatch) {
                    self.retry_task(ctx, j, tt);
                }
                break;
            }
        }
        self.scratch_inbound = inbound;
    }

    /// Returns `false` when no route survives between the endpoints —
    /// only possible while a fabric fault is active.
    #[allow(clippy::too_many_arguments)]
    fn start_transfer(
        &mut self,
        ctx: &mut Context<'_, DcEvent>,
        dispatch: u64,
        job: JobId,
        t: u32,
        src: ServerId,
        dst: ServerId,
        bytes: u64,
    ) -> bool {
        let now = ctx.now();
        let comm = self.net.as_ref().expect("transfer without network").comm;
        match comm {
            CommModel::Flow => {
                let fid = FlowId(self.flow_slots.next_key());
                let net = self.net.as_mut().expect("checked above");
                let Some(route) = net.route_between(src, dst, fid.0) else {
                    debug_assert!(net.fabric_down > 0, "topology is connected");
                    return false;
                };
                // Waking LPI ports starts now; the flow may not move data
                // until the slowest port along the route is back up, so its
                // admission is delayed by the worst wake latency (matching
                // the packet model, which pads each transmission start).
                let mut wake = SimDuration::ZERO;
                for &l in &route.links {
                    wake = wake.max(net.wake_link(now, l));
                }
                let (hs, hd) = (net.host_of(src), net.host_of(dst));
                if wake.is_zero() {
                    // Batched: the re-solve runs once per event, when
                    // `schedule_flow_retimes` flushes — a task's whole
                    // transfer fan-in shares one fair-share solve.
                    let nk = net
                        .flows
                        .add_flow_batched(now, fid, hs, hd, &route.links, bytes);
                    let key = self.flow_slots.insert(FlowSt {
                        route,
                        pending: None,
                        dispatch,
                        bytes,
                        net_key: Some(nk),
                    });
                    debug_assert_eq!(key, fid.0);
                } else {
                    let key = self.flow_slots.insert(FlowSt {
                        route,
                        pending: Some((hs, hd, bytes)),
                        dispatch,
                        bytes,
                        net_key: None,
                    });
                    debug_assert_eq!(key, fid.0);
                    ctx.schedule_in(wake, DcEvent::FlowAdmit { flow: fid.0 });
                }
            }
            CommModel::Packet { mtu, .. } => {
                let net = self.net.as_mut().expect("checked above");
                let Some(route) = net.route_between(src, dst, job.0 ^ u64::from(t)) else {
                    debug_assert!(net.fabric_down > 0, "topology is connected");
                    return false;
                };
                // Packetize arithmetically (no segment vector): `full`
                // MTU-sized packets plus a possible short tail.
                let full = bytes / mtu;
                let tail = bytes % mtu;
                let n = full + u64::from(tail > 0);
                debug_assert!(n > 0, "inbound edges carry bytes");
                let xfer = self.transfer_slots.insert(TransferSt {
                    remaining: n,
                    dispatch,
                });
                for i in 0..n {
                    let b = if i < full { mtu } else { tail };
                    let pid = PacketId(self.next_packet_id);
                    self.next_packet_id += 1;
                    let st = PacketSt {
                        packet: Packet::new(pid, b, Arc::clone(&route)),
                        xfer,
                    };
                    let slot = match self.free_slots.pop() {
                        Some(s) => {
                            self.packet_slots[s] = Some(st);
                            s
                        }
                        None => {
                            self.packet_slots.push(Some(st));
                            self.packet_slots.len() - 1
                        }
                    };
                    self.send_packet(ctx, slot);
                }
            }
        }
        true
    }

    /// One DAG edge fully delivered: counts it against the consumer task's
    /// transfer barrier and dispatches once every inbound edge has landed.
    fn finish_edge(&mut self, ctx: &mut Context<'_, DcEvent>, dispatch: u64) {
        let (job, task) = {
            let (_, handle) = self.dispatch_slots.get(dispatch).expect("pending dispatch");
            (handle.id.job, handle.id.index)
        };
        if self.jobs.get_mut(job).transfer_done(task) {
            let (sid, handle) = self
                .dispatch_slots
                .remove(dispatch)
                .expect("pending dispatch");
            self.committed[sid.0 as usize] -= 1;
            self.dispatch(ctx, sid, handle);
        }
    }

    /// Reaps a packet whose transfer was killed by a fault (the kill
    /// leaves the slot in place so the packet's outstanding event can
    /// find and free it — free-list reuse makes eager freeing unsafe).
    /// Returns `true` if the slot was reaped.
    fn reap_orphan_packet(&mut self, slot: usize) -> bool {
        let st = self.packet_slots[slot].as_ref().expect("live packet slot");
        if self.transfer_slots.get(st.xfer).is_some() {
            return false;
        }
        self.packet_slots[slot] = None;
        self.free_slots.push(slot);
        true
    }

    /// Transmits the packet in `slot` over its next hop.
    fn send_packet(&mut self, ctx: &mut Context<'_, DcEvent>, slot: usize) {
        if self.reap_orphan_packet(slot) {
            return;
        }
        let now = ctx.now();
        let (node, link, bytes) = {
            let st = self.packet_slots[slot].as_ref().expect("live packet slot");
            let link = st.packet.next_link().expect("packet not at destination");
            (st.packet.current_node(), link, st.packet.bytes)
        };
        let net = self.net.as_mut().expect("packet without network");
        // Wake the egress port if this node is a switch; the wake latency
        // delays the transmission start.
        let mut start = now;
        let sw_port = net.switch_index.get(&node).copied().map(|swi| {
            let l = net.topology.link(link);
            let port = l.endpoint_on(node).expect("link touches node").port;
            (swi, port)
        });
        if let Some((swi, port)) = sw_port {
            let wake = net.switches[swi].wake_for_tx(now, port);
            start = now + wake;
        }
        match net
            .packets
            .transmit(start, &net.topology, link, node, bytes)
        {
            TxOutcome::Forwarded { arrives_at } => {
                if let Some((swi, port)) = sw_port {
                    let tx_end = arrives_at - net.topology.link(link).latency;
                    net.switches[swi].note_tx_end(port, tx_end);
                    if let Some(hold) = net.lpi_hold {
                        Self::schedule_lpi_check(ctx, net, swi, port, tx_end + hold);
                    }
                }
                ctx.schedule_at(arrives_at, DcEvent::PacketArrive { slot });
            }
            TxOutcome::Dropped => {
                ctx.schedule_in(RETRY_DELAY, DcEvent::PacketRetry { slot });
            }
        }
    }

    fn on_packet_arrive(&mut self, ctx: &mut Context<'_, DcEvent>, slot: usize) {
        if self.reap_orphan_packet(slot) {
            return;
        }
        let finished = {
            let st = self.packet_slots[slot].as_mut().expect("live packet slot");
            st.packet.hop += 1;
            st.packet.at_destination()
        };
        if !finished {
            self.send_packet(ctx, slot);
            return;
        }
        let st = self.packet_slots[slot].take().expect("live packet slot");
        self.free_slots.push(slot);
        let tr = self
            .transfer_slots
            .get_mut(st.xfer)
            .expect("transfer accounting");
        tr.remaining -= 1;
        if tr.remaining == 0 {
            let dispatch = tr.dispatch;
            self.transfer_slots.remove(st.xfer);
            // This *edge* is fully delivered; the task starts once all its
            // inbound edges have landed.
            self.finish_edge(ctx, dispatch);
        }
    }

    /// Admits a flow whose start was held back by switch wake latency.
    fn on_flow_admit(&mut self, ctx: &mut Context<'_, DcEvent>, flow: u64) {
        let now = ctx.now();
        let Datacenter {
            flow_slots, net, ..
        } = self;
        // A fault may have killed the flow while it waited out the wake.
        let Some(st) = flow_slots.get_mut(flow) else {
            return;
        };
        let net = net.as_mut().expect("flows without network");
        // A pending flow occupies no links yet, so an LpiCheck firing
        // inside the wake window can have re-slept a route port. Re-wake
        // the route; any residual latency delays admission again.
        let mut wake = SimDuration::ZERO;
        for &l in &st.route.links {
            wake = wake.max(net.wake_link(now, l));
        }
        if !wake.is_zero() {
            ctx.schedule_in(wake, DcEvent::FlowAdmit { flow });
            return;
        }
        let (hs, hd, bytes) = st.pending.take().expect("pending flow has admission state");
        let nk = net
            .flows
            .add_flow_batched(now, FlowId(flow), hs, hd, &st.route.links, bytes);
        st.net_key = Some(nk);
        self.schedule_flow_retimes(ctx);
    }

    /// Re-arms the single `FlowsAdvance` event at the flow network's
    /// earliest projected completion. Rate deltas already retimed the
    /// per-flow entries inside the network's completion heap; the
    /// calendar only needs a new event when the earliest projection moved
    /// *before* the armed one (later moves leave the armed event to fire
    /// as a cheap no-op and re-arm itself).
    fn schedule_flow_retimes(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let Some(net) = self.net.as_mut() else { return };
        net.flows.flush(ctx.now());
        let Some(due) = net.flows.next_due() else {
            return;
        };
        let now = ctx.now();
        if self.flow_check_armed > now && self.flow_check_armed <= due {
            return;
        }
        self.flow_check_armed = due;
        ctx.schedule_at(due, DcEvent::FlowsAdvance);
    }

    fn on_flows_advance(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let now = ctx.now();
        let Some(net) = self.net.as_mut() else { return };
        net.flows.advance_due(now);
        let mut done = std::mem::take(&mut self.scratch_flow_done);
        done.clear();
        done.extend(net.flows.drain_completed());
        let hold = net.lpi_hold;
        for c in &done {
            let st = self
                .flow_slots
                .remove(c.id.0)
                .expect("completed flow has state");
            // Freed links may now idle their ports.
            if let Some(hold) = hold {
                let net = self.net.as_mut().expect("still here");
                for &l in &st.route.links {
                    if net.flows.flows_on_link(l) == 0 {
                        let ports = net.switch_ports_of_link(l);
                        for (swi, port) in ports {
                            Self::schedule_lpi_check(ctx, net, swi, port, now + hold);
                        }
                    }
                }
            }
            self.finish_edge(ctx, st.dispatch);
        }
        self.scratch_flow_done = done;
        if self.net.is_some() {
            self.schedule_flow_retimes(ctx);
        }
    }

    fn on_lpi_check(&mut self, ctx: &mut Context<'_, DcEvent>, switch: usize, port: u32) {
        let now = ctx.now();
        let Some(net) = self.net.as_mut() else { return };
        let Some(hold) = net.lpi_hold else { return };
        let is_packet = matches!(net.comm, CommModel::Packet { .. });
        // Coalesced (packet) mode: a later check is armed for this port,
        // so this event is a leftover from before coalescing kicked in.
        if is_packet && net.lpi_armed[switch][port as usize] > now {
            return;
        }
        let link = net.port_link[&(switch, port)];
        let busy = match net.comm {
            CommModel::Flow => net.flows.flows_on_link(link) > 0,
            CommModel::Packet { .. } => {
                let sw_node = net.switches[switch].node();
                net.packets
                    .egress_idle_at(&net.topology, link, sw_node, now)
                    > now
            }
        };
        let idle_due = net.switches[switch].last_tx_end(port).saturating_add(hold);
        if busy || idle_due > now {
            // Traffic since this check was scheduled. Packet mode owns
            // the port's single timer: re-arm it at the idle deadline
            // (every in-flight transmission has already advanced
            // `last_tx_end`, so the deadline is in the future whenever
            // the port is busy).
            if is_packet && idle_due > now {
                net.lpi_armed[switch][port as usize] = idle_due;
                ctx.schedule_at(idle_due, DcEvent::LpiCheck { switch, port });
            }
            return;
        }
        let use_alr = net.use_alr;
        let sw = &mut net.switches[switch];
        if use_alr {
            // ALR mode: negotiate the idle port down the ladder instead of
            // entering LPI (zero exit latency, smaller savings).
            let lowest = sw.profile().port.alr_ladder.first().map(|&(rate, _)| rate);
            if let Some(rate) = lowest {
                sw.set_port_rate(now, port, Some(rate));
            }
        } else if sw.enter_lpi(now, port) {
            let card = sw.card_of(port);
            sw.sleep_card(now, card);
        }
        let _ = ctx;
    }

    // ------------------------------------------------------------------
    // Server-side events
    // ------------------------------------------------------------------

    fn dispatch(&mut self, ctx: &mut Context<'_, DcEvent>, sid: ServerId, handle: TaskHandle) {
        // Front-end request traffic down the access link, if modeled.
        if let Some((req, _)) = self.net.as_ref().and_then(|n| n.ingress_bytes) {
            self.touch_access_port(ctx, sid, req);
        }
        self.servers[sid.0 as usize].submit(ctx.now(), handle, &mut self.fx);
        Self::apply_effects(ctx, sid, &self.fx, self.crash_gen(sid));
    }

    /// Marks `sid`'s access-link switch port active for a transmission of
    /// `bytes`, charging LPI wake-ups and scheduling the idle re-check —
    /// the mechanism behind the §V-B port-state log.
    fn touch_access_port(&mut self, ctx: &mut Context<'_, DcEvent>, sid: ServerId, bytes: u64) {
        let now = ctx.now();
        let Some(net) = self.net.as_mut() else { return };
        let Some((swi, port, link)) = net.access_port(sid) else {
            return;
        };
        let wake = net.switches[swi].wake_for_tx(now, port);
        let rate = net.topology.link(link).rate_bps;
        let tx_end = now + wake + SimDuration::from_secs_f64(bytes as f64 * 8.0 / rate as f64);
        net.switches[swi].note_tx_end(port, tx_end);
        if let Some(hold) = net.lpi_hold {
            Self::schedule_lpi_check(ctx, net, swi, port, tx_end + hold);
        }
    }

    /// Schedules an `LpiCheck` for `(swi, port)` at `at`.
    ///
    /// In packet mode the per-port idle timer is coalesced: while a check
    /// is still outstanding (armed strictly in the future), new requests
    /// are dropped — the outstanding check re-arms itself off the port's
    /// `last_tx_end` when it fires — so a busy port carries one pending
    /// idle check per hold window instead of one per forwarded packet,
    /// while still entering LPI at exactly `last_tx_end + hold`. Flow
    /// mode keeps direct scheduling (its check volume is per-flow, and
    /// link-freed checks are not tied to the transmit clock).
    fn schedule_lpi_check(
        ctx: &mut Context<'_, DcEvent>,
        net: &mut NetState,
        swi: usize,
        port: u32,
        at: SimTime,
    ) {
        let at = at.max(ctx.now());
        if matches!(net.comm, CommModel::Packet { .. }) {
            let armed = &mut net.lpi_armed[swi][port as usize];
            if *armed > ctx.now() {
                return;
            }
            *armed = at;
        }
        ctx.schedule_at(at, DcEvent::LpiCheck { switch: swi, port });
    }

    /// The server's current crash generation (0 whenever fault injection
    /// is off, so `gen` fields stay 0 and guards compare 0 == 0).
    fn crash_gen(&self, sid: ServerId) -> u32 {
        self.faults
            .as_ref()
            .map_or(0, |f| f.crash_gen[sid.0 as usize])
    }

    /// Schedules the follow-up events for the effects a server call left in
    /// `fx`, stamping completion/transition events with the server's crash
    /// generation `gen`. Associated (not `&mut self`) so the reusable
    /// buffer can be borrowed from `self` at every call site without
    /// conflict.
    fn apply_effects(ctx: &mut Context<'_, DcEvent>, sid: ServerId, fx: &EffectBuf, gen: u32) {
        for &e in fx.as_slice() {
            match e {
                Effect::TaskStarted {
                    core,
                    id,
                    completes_in,
                } => {
                    ctx.schedule_in(
                        completes_in,
                        DcEvent::TaskComplete {
                            server: sid,
                            core,
                            task: id,
                            gen,
                        },
                    );
                }
                Effect::ArmTimer { after, gen } => {
                    ctx.schedule_in(after, DcEvent::ServerTimer { server: sid, gen });
                }
                Effect::TransitionDoneIn { after } => {
                    ctx.schedule_in(after, DcEvent::ServerTransition { server: sid, gen });
                }
            }
        }
    }

    fn on_task_complete(
        &mut self,
        ctx: &mut Context<'_, DcEvent>,
        sid: ServerId,
        core: u32,
        expected: TaskId,
    ) {
        let now = ctx.now();
        let tid = self.servers[sid.0 as usize].complete(now, core, &mut self.fx);
        debug_assert_eq!(tid, expected, "completion event routed to wrong core");
        Self::apply_effects(ctx, sid, &self.fx, self.crash_gen(sid));
        // Response traffic back up the access link, if modeled.
        if let Some((_, resp)) = self.net.as_ref().and_then(|n| n.ingress_bytes) {
            self.touch_access_port(ctx, sid, resp);
        }
        // DAG bookkeeping.
        let mut ready = std::mem::take(&mut self.scratch_ready);
        ready.clear();
        self.jobs
            .get_mut(tid.job)
            .finish_task_into(tid.index, &mut ready);
        // Abandoned jobs (retry budget exhausted) stop spawning work;
        // their already-running tasks just drain.
        if !self.jobs.get(tid.job).is_abandoned() {
            for &t in &ready {
                self.place_or_queue(ctx, tid.job, t);
            }
        }
        self.scratch_ready = ready;
        if self.jobs.get(tid.job).is_complete() {
            let js = self.jobs.remove_completed(tid.job);
            // Steady-state statistics: skip jobs that arrived in warm-up.
            if js.arrived.saturating_duration_since(SimTime::ZERO) >= self.cfg.warmup {
                let lat = now.saturating_duration_since(js.arrived).as_secs_f64();
                self.metrics.latency.record(lat);
                // Resilience split: jobs that needed a fault retry vs
                // jobs the faults never touched.
                if let Some(f) = self.faults.as_mut() {
                    if js.fault_affected() {
                        f.affected_lat.record(lat);
                    } else {
                        f.clean_lat.record(lat);
                    }
                }
            }
            // Recycle the state so the next arrival reuses its allocations.
            self.job_pool.push(js);
        }
        self.pull_global_queue(ctx, sid);
        // Transfer admissions from the placements and pulls above are
        // batched; solve and arm the completion check once per event.
        self.schedule_flow_retimes(ctx);
    }

    fn pull_global_queue(&mut self, ctx: &mut Context<'_, DcEvent>, sid: ServerId) {
        // With fault injection armed the global queue doubles as the
        // refuge for tasks that found no eligible server mid-outage, so
        // pulls run even in direct-dispatch mode (a no-op while empty).
        if (!self.cfg.use_global_queue && self.faults.is_none()) || !self.is_eligible(sid) {
            return;
        }
        loop {
            let s = &self.servers[sid.0 as usize];
            // Capacity must count tasks already committed to this server
            // and awaiting inbound transfers, or the pull loop over-commits
            // beyond the core count.
            let claimed = s.busy_cores() + self.committed[sid.0 as usize];
            if !(s.is_awake() && claimed < s.core_count()) {
                return;
            }
            // Only pull tasks this server's class may run: with no class
            // map every task is eligible (plain FIFO pop); otherwise the
            // per-class sub-queue indices make the pull O(1).
            let popped = if self.cfg.server_classes.is_empty() {
                self.global_queue.pop(ctx.now())
            } else {
                self.global_queue
                    .pop_eligible(ctx.now(), self.cfg.server_classes[sid.0 as usize])
            };
            let Some((handle, _waited)) = popped else {
                return;
            };
            let (job, t) = (handle.id.job, handle.id.index);
            self.assign_and_transfer(ctx, job, t, handle, sid);
        }
    }

    // ------------------------------------------------------------------
    // Workload
    // ------------------------------------------------------------------

    fn on_job_arrival(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let now = ctx.now();
        // Geo routing (federated runs only): decided before the job
        // enters this site's table, from the coordinator's load snapshot.
        // The decision is a pure function — local arrivals then take
        // exactly the standalone path, same RNG draws and all.
        if let Some(port) = &self.fed {
            let target = route_site(port.geo, port.site, &port.site_loads, &port.wan_latency_s);
            if target != port.site {
                let state = self.generate_job(now);
                let port = self.fed.as_mut().expect("checked above");
                port.forwarded += 1;
                port.outbox.push((now, target, state));
                self.schedule_next_arrival(ctx);
                return;
            }
        }
        let id = self.jobs.alloc_id();
        let state = self.generate_job(now);
        self.admit_job(ctx, id, state);
        self.schedule_next_arrival(ctx);
    }

    /// Draws the next job's DAG from the template (recycling a completed
    /// job's allocations when possible).
    fn generate_job(&mut self, now: SimTime) -> JobState {
        match self.job_pool.pop() {
            Some(mut recycled) => {
                self.cfg
                    .template
                    .generate_into(&mut self.rng_workload, &mut recycled.dag);
                recycled.reset(now);
                recycled
            }
            None => {
                let dag = self.cfg.template.generate(&mut self.rng_workload);
                JobState::new(dag, now)
            }
        }
    }

    /// Inserts `state` as job `id` and places its ready roots.
    fn admit_job(&mut self, ctx: &mut Context<'_, DcEvent>, id: JobId, state: JobState) {
        let mut ready = std::mem::take(&mut self.scratch_ready);
        ready.clear();
        ready.extend_from_slice(state.dag.roots());
        self.jobs.insert(id, state);
        for &t in &ready {
            self.place_or_queue(ctx, id, t);
        }
        self.scratch_ready = ready;
        // Admissions from the placements above are batched; solve once.
        self.schedule_flow_retimes(ctx);
    }

    /// A forwarded job's WAN transfer completed: admit it here. Its
    /// `arrived` stamp still carries the home-site arrival instant, so
    /// the recorded latency includes the WAN leg.
    fn on_remote_job_arrive(&mut self, ctx: &mut Context<'_, DcEvent>, slot: u64) {
        let state = self
            .remote_inbox
            .remove(slot)
            .expect("remote job delivered exactly once");
        let id = self.jobs.alloc_id();
        self.admit_job(ctx, id, state);
    }

    fn schedule_next_arrival(&mut self, ctx: &mut Context<'_, DcEvent>) {
        if let Some(gap) = self.arrivals.next_gap(&mut self.rng_workload) {
            let at = ctx.now() + gap;
            if at <= SimTime::ZERO + self.cfg.duration {
                ctx.schedule_at(at, DcEvent::JobArrival);
            }
        }
    }

    // ------------------------------------------------------------------
    // Controllers & sampling
    // ------------------------------------------------------------------

    fn on_controller_tick(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let now = ctx.now();
        // Act repeatedly within one tick so deep load swings are matched by
        // batch activations/parkings rather than one server per period.
        for _ in 0..8 {
            if !self.controller_step(ctx) {
                break;
            }
        }
        // On-demand DVFS governor: step server frequencies toward the load.
        if let Some(dvfs) = self.cfg.dvfs {
            for s in &mut self.servers {
                let load = s.pending() as f64 / s.core_count() as f64;
                let p = s.pstate();
                if load > dvfs.high && p + 1 < s.pstate_count() {
                    s.set_pstate(now, p + 1);
                } else if load < dvfs.low && p > 0 {
                    s.set_pstate(now, p - 1);
                }
            }
        }
        // Keep ticking within the horizon.
        if now + self.cfg.controller_period <= SimTime::ZERO + self.cfg.duration {
            ctx.schedule_in(self.cfg.controller_period, DcEvent::ControllerTick);
        }
    }

    /// One controller decision; returns `true` if it acted.
    fn controller_step(&mut self, ctx: &mut Context<'_, DcEvent>) -> bool {
        let now = ctx.now();
        let total_pending = self.total_pending() as f64;
        // Controller decisions (extracted first to satisfy the borrow
        // checker: acting on servers needs &mut self).
        enum Decision {
            Park(ServerId),
            Unpark(ServerId),
            Promote(ServerId),
            Demote(ServerId),
            None,
        }
        let decision = match &mut self.controller {
            Some(Controller::Provisioning { ctl, parked }) => {
                let active = self.servers.len() - parked.len();
                match ctl.decide(total_pending, active) {
                    ProvisionAction::ActivateOne => match parked.iter().next().copied() {
                        Some(id) => {
                            parked.remove(&id);
                            Decision::Unpark(id)
                        }
                        None => Decision::None,
                    },
                    ProvisionAction::DeactivateOne => {
                        // Park the highest-id non-parked server.
                        let candidate = (0..self.servers.len() as u32)
                            .rev()
                            .map(ServerId)
                            .find(|id| !parked.contains(id));
                        match candidate {
                            Some(id) if self.servers.len() - parked.len() > 1 => {
                                parked.insert(id);
                                Decision::Park(id)
                            }
                            _ => Decision::None,
                        }
                    }
                    ProvisionAction::Hold => Decision::None,
                }
            }
            Some(Controller::Pools { mgr }) => {
                // Pool load counts only the active pool's pending work.
                let active_pending: usize = mgr
                    .active_iter()
                    .map(|id| self.servers[id.0 as usize].pending())
                    .sum();
                match mgr.decide(active_pending as f64 + self.global_queue.len() as f64) {
                    PoolAction::Promote(id) => {
                        mgr.apply_promote(id);
                        Decision::Promote(id)
                    }
                    PoolAction::Demote(id) => {
                        mgr.apply_demote(id);
                        Decision::Demote(id)
                    }
                    PoolAction::Hold => Decision::None,
                }
            }
            None => Decision::None,
        };
        match decision {
            Decision::Park(id) => {
                // Parked servers simply stop receiving work; their own
                // sleep policy (delay timer) decides when they descend.
                self.set_eligible(id, false);
            }
            // A crashed node ignores controller wake-ups/policy pokes; it
            // rejoins the eligible set at its FaultRecover instant (the
            // controller's own bookkeeping still advances).
            Decision::Unpark(id) => {
                if !self.is_down(id) {
                    self.servers[id.0 as usize].set_policy(
                        now,
                        self.cfg.policy_for(id.0 as usize),
                        &mut self.fx,
                    );
                    Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
                    self.servers[id.0 as usize].request_wake(now, &mut self.fx);
                    Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
                    self.set_eligible(id, true);
                }
            }
            Decision::Promote(id) => {
                if !self.is_down(id) {
                    let pool_policy = match &self.controller {
                        Some(Controller::Pools { mgr }) => mgr.active_pool_policy(),
                        _ => unreachable!("promotion without pools"),
                    };
                    self.servers[id.0 as usize].set_policy(now, pool_policy, &mut self.fx);
                    Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
                    self.servers[id.0 as usize].request_wake(now, &mut self.fx);
                    Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
                    self.set_eligible(id, true);
                }
            }
            Decision::Demote(id) => {
                if !self.is_down(id) {
                    let pool_policy = match &self.controller {
                        Some(Controller::Pools { mgr }) => mgr.sleep_pool_policy(),
                        _ => unreachable!("demotion without pools"),
                    };
                    self.servers[id.0 as usize].set_policy(now, pool_policy, &mut self.fx);
                    Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
                }
                self.set_eligible(id, false);
            }
            Decision::None => return false,
        }
        true
    }

    fn on_stats_sample(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let now = ctx.now();
        self.metrics
            .active_servers
            .observe(now, self.awake_servers() as f64);
        self.metrics
            .active_jobs
            .observe(now, self.jobs.in_flight() as f64);
        let server_power: f64 = self.servers.iter().map(|s| s.power_w()).sum();
        self.metrics.server_power.observe(now, server_power);
        if let Some(net) = &self.net {
            self.metrics.switch_power.observe(now, net.switch_power_w());
        }
        self.metrics
            .cpu0_power
            .observe(now, self.servers[0].cpu_power_w());
        if now + self.cfg.sample_period <= SimTime::ZERO + self.cfg.duration {
            ctx.schedule_in(self.cfg.sample_period, DcEvent::StatsSample);
        }
    }

    fn on_init(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let now = ctx.now();
        // Pool members adopt their pool policies (arms sleep-pool timers).
        if let Some(Controller::Pools { mgr }) = &self.controller {
            let actions: Vec<(ServerId, SleepPolicy)> = mgr
                .active_iter()
                .map(|id| (id, mgr.active_pool_policy()))
                .chain(mgr.sleeping_iter().map(|id| (id, mgr.sleep_pool_policy())))
                .collect();
            for (id, pol) in actions {
                self.servers[id.0 as usize].set_policy(now, pol, &mut self.fx);
                Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
            }
            self.rebuild_eligible();
        } else {
            // Arm any configured delay timers for servers that start idle.
            let policies: Vec<SleepPolicy> = (0..self.servers.len())
                .map(|i| self.cfg.policy_for(i))
                .collect();
            for (i, pol) in policies.into_iter().enumerate() {
                if pol.deep_after.is_some() {
                    self.servers[i].set_policy(now, pol, &mut self.fx);
                    let id = ServerId(i as u32);
                    Self::apply_effects(ctx, id, &self.fx, self.crash_gen(id));
                }
            }
        }
        // Idle switch ports may enter LPI after the initial hold.
        if let Some(net) = self.net.as_mut() {
            if let Some(hold) = net.lpi_hold {
                let at = now + hold;
                for swi in 0..net.switches.len() {
                    for port in 0..net.switches[swi].port_count() as u32 {
                        Self::schedule_lpi_check(ctx, net, swi, port, at);
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Fault injection & retry
    // ------------------------------------------------------------------

    /// `true` while `id` is crashed (fault injection only).
    fn is_down(&self, id: ServerId) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|f| f.down_since[id.0 as usize].is_some())
    }

    /// Dispatches a scheduled fault/recovery (index into the schedule).
    fn on_fault(&mut self, ctx: &mut Context<'_, DcEvent>, fault: u32) {
        let kind = self
            .faults
            .as_ref()
            .expect("fault event without state")
            .schedule[fault as usize]
            .kind;
        let applied = match kind {
            FaultKind::ServerCrash { server } => self.on_server_crash(ctx, server),
            FaultKind::ServerRecover { server } => self.on_server_recover(ctx, server),
            FaultKind::ServerStraggle { server, factor } => self.on_server_straggle(server, factor),
            FaultKind::ServerStraggleEnd { server } => self.on_server_straggle_end(server),
            FaultKind::SwitchDown { switch } => self.on_switch_fault(ctx, switch, true),
            FaultKind::SwitchUp { switch } => self.on_switch_fault(ctx, switch, false),
            FaultKind::LinkDown { link } => self.on_link_fault(ctx, link, true),
            FaultKind::LinkUp { link } => self.on_link_fault(ctx, link, false),
            // WAN faults are the federation coordinator's concern; site
            // schedules never carry them (`materialize` filters them out).
            FaultKind::WanLinkDown { .. } | FaultKind::WanLinkUp { .. } => false,
        };
        // Only fault firings that hit a live component count as injected
        // (duplicate crash events and out-of-range targets are no-ops).
        if applied && !kind.is_recovery() {
            self.faults.as_mut().expect("state").faults_injected += 1;
        }
    }

    /// Fail-stop crash: kills running/queued/committed work, bumps the
    /// crash generation (orphaning in-flight completion events), and
    /// powers the server off until its recovery event.
    fn on_server_crash(&mut self, ctx: &mut Context<'_, DcEvent>, server: u32) -> bool {
        let now = ctx.now();
        let idx = server as usize;
        if idx >= self.servers.len() {
            return false;
        }
        {
            let f = self.faults.as_mut().expect("fault event without state");
            if f.down_since[idx].is_some() {
                return false;
            }
            f.crash_gen[idx] += 1;
            f.down_since[idx] = Some(now);
        }
        let sid = ServerId(server);
        self.set_eligible(sid, false);
        let mut killed = std::mem::take(&mut self.faults.as_mut().expect("state").scratch_killed);
        killed.clear();
        self.servers[idx].fail(now, &mut killed);
        // Tasks committed to this server but still awaiting inbound
        // transfers die with it (slot-key order keeps this deterministic).
        let doomed: Vec<u64> = self
            .dispatch_slots
            .iter()
            .filter(|(_, st)| st.0 == sid)
            .map(|(k, _)| k)
            .collect();
        self.faults.as_mut().expect("state").tasks_killed += (killed.len() + doomed.len()) as u64;
        for h in &killed {
            self.retry_task(ctx, h.id.job, h.id.index);
        }
        for slot in doomed {
            if let Some((job, t)) = self.kill_dispatch(ctx, slot) {
                self.retry_task(ctx, job, t);
            }
        }
        killed.clear();
        self.faults.as_mut().expect("state").scratch_killed = killed;
        // Flow removals above were batched; solve once.
        self.schedule_flow_retimes(ctx);
        true
    }

    /// Reboot: the server rejoins the eligible set (overriding any
    /// controller parking — the controller re-parks on a later tick) and
    /// wakes from its powered-off state.
    fn on_server_recover(&mut self, ctx: &mut Context<'_, DcEvent>, server: u32) -> bool {
        let now = ctx.now();
        let idx = server as usize;
        if idx >= self.servers.len() {
            return false;
        }
        {
            let f = self.faults.as_mut().expect("fault event without state");
            let Some(down_at) = f.down_since[idx].take() else {
                return false;
            };
            f.server_downtime_s += now.saturating_duration_since(down_at).as_secs_f64();
        }
        let sid = ServerId(server);
        self.set_eligible(sid, true);
        self.servers[idx].request_wake(now, &mut self.fx);
        Self::apply_effects(ctx, sid, &self.fx, self.crash_gen(sid));
        true
    }

    /// Performance fault: new tasks on the server run `factor`× slower
    /// (already-running tasks keep their completion instants) and the
    /// degraded node leaves the placement set until the fault ends.
    fn on_server_straggle(&mut self, server: u32, factor: f64) -> bool {
        let idx = server as usize;
        let usable = factor.is_finite() && factor > 0.0;
        if idx >= self.servers.len() || !usable {
            return false;
        }
        self.servers[idx].set_fault_speed(factor);
        self.set_eligible(ServerId(server), false);
        true
    }

    fn on_server_straggle_end(&mut self, server: u32) -> bool {
        let idx = server as usize;
        if idx >= self.servers.len() {
            return false;
        }
        self.servers[idx].set_fault_speed(1.0);
        // Do not resurrect a server that crashed mid-straggle.
        if !self.is_down(ServerId(server)) {
            self.set_eligible(ServerId(server), true);
        }
        true
    }

    /// Takes a fabric switch down (or back up), rerouting or killing the
    /// traffic crossing it.
    fn on_switch_fault(&mut self, ctx: &mut Context<'_, DcEvent>, switch: u32, down: bool) -> bool {
        let now = ctx.now();
        let idx = switch as usize;
        let changed = match self.net.as_mut() {
            Some(net) if idx < net.switches.len() => {
                let node = net.switches[idx].node();
                net.set_node_down(node, down)
            }
            _ => return false,
        };
        if !changed {
            return false;
        }
        let f = self.faults.as_mut().expect("fault event without state");
        if down {
            f.switch_down_since[idx] = Some(now);
            self.on_fabric_down(ctx);
        } else if let Some(t) = f.switch_down_since[idx].take() {
            // Recovery needs no in-flight fixups: the cleared mask (and
            // dropped route cache) lets new transfers use the switch.
            f.switch_downtime_s += now.saturating_duration_since(t).as_secs_f64();
        }
        true
    }

    /// Takes a fabric link down (or back up); same contract as
    /// [`Datacenter::on_switch_fault`].
    fn on_link_fault(&mut self, ctx: &mut Context<'_, DcEvent>, link: u32, down: bool) -> bool {
        let now = ctx.now();
        let idx = link as usize;
        let changed = match self.net.as_mut() {
            Some(net) if idx < net.topology.links().len() => net.set_link_down(LinkId(link), down),
            _ => return false,
        };
        if !changed {
            return false;
        }
        let f = self.faults.as_mut().expect("fault event without state");
        if down {
            f.link_down_since[idx] = Some(now);
            self.on_fabric_down(ctx);
        } else if let Some(t) = f.link_down_since[idx].take() {
            f.link_downtime_s += now.saturating_duration_since(t).as_secs_f64();
        }
        true
    }

    /// A switch or link just died: every in-flight transfer whose route
    /// crosses it restarts on a surviving route, or — when no route
    /// survives — kills its dispatch and retries the consumer task.
    fn on_fabric_down(&mut self, ctx: &mut Context<'_, DcEvent>) {
        let now = ctx.now();
        match self.net.as_ref().map(|n| n.comm) {
            Some(CommModel::Flow) => {
                let dead: Vec<u64> = {
                    let net = self.net.as_ref().expect("checked above");
                    self.flow_slots
                        .iter()
                        .filter(|(_, st)| net.route_is_dead(&st.route))
                        .map(|(k, _)| k)
                        .collect()
                };
                for k in dead {
                    // An earlier kill_dispatch may have removed it already.
                    let Some(st) = self.flow_slots.remove(k) else {
                        continue;
                    };
                    let (hs, hd, bytes, was_admitted) = match st.pending {
                        Some((hs, hd, b)) => (hs, hd, b, false),
                        None => (
                            st.route.nodes[0],
                            *st.route.nodes.last().expect("route has nodes"),
                            st.bytes,
                            true,
                        ),
                    };
                    if was_admitted {
                        // Partial progress is lost: the flow restarts from
                        // its full size on the surviving fabric.
                        let net = self.net.as_mut().expect("checked above");
                        net.flows
                            .remove_flow(now, st.net_key.expect("admitted flow has a net key"));
                        if let Some(hold) = net.lpi_hold {
                            for &l in &st.route.links {
                                if net.flows.flows_on_link(l) == 0 {
                                    let ports = net.switch_ports_of_link(l);
                                    for (swi, port) in ports {
                                        Self::schedule_lpi_check(ctx, net, swi, port, now + hold);
                                    }
                                }
                            }
                        }
                        self.faults.as_mut().expect("state").transfer_retries += 1;
                    }
                    let dispatch = st.dispatch;
                    let new_key = self.flow_slots.next_key();
                    let routed = {
                        let net = self.net.as_mut().expect("checked above");
                        net.route_hosts_avoiding(hs, hd, new_key).map(|route| {
                            let mut wake = SimDuration::ZERO;
                            for &l in &route.links {
                                wake = wake.max(net.wake_link(now, l));
                            }
                            (route, wake)
                        })
                    };
                    match routed {
                        None => {
                            // Destination unreachable: re-place the task.
                            if let Some((job, t)) = self.kill_dispatch(ctx, dispatch) {
                                self.retry_task(ctx, job, t);
                            }
                        }
                        Some((route, wake)) => {
                            if wake.is_zero() {
                                let net = self.net.as_mut().expect("checked above");
                                let nk = net.flows.add_flow_batched(
                                    now,
                                    FlowId(new_key),
                                    hs,
                                    hd,
                                    &route.links,
                                    bytes,
                                );
                                let key = self.flow_slots.insert(FlowSt {
                                    route,
                                    pending: None,
                                    dispatch,
                                    bytes,
                                    net_key: Some(nk),
                                });
                                debug_assert_eq!(key, new_key);
                            } else {
                                let key = self.flow_slots.insert(FlowSt {
                                    route,
                                    pending: Some((hs, hd, bytes)),
                                    dispatch,
                                    bytes,
                                    net_key: None,
                                });
                                debug_assert_eq!(key, new_key);
                                ctx.schedule_in(wake, DcEvent::FlowAdmit { flow: new_key });
                            }
                        }
                    }
                }
                self.schedule_flow_retimes(ctx);
            }
            Some(CommModel::Packet { .. }) => {
                // A packet heading into the dead component dooms its whole
                // transfer set: the consumer dispatch restarts from
                // scratch (packet order = slot order, deterministic).
                let mut doomed: Vec<u64> = Vec::new();
                {
                    let net = self.net.as_ref().expect("checked above");
                    for st in self.packet_slots.iter().flatten() {
                        let Some(tr) = self.transfer_slots.get(st.xfer) else {
                            continue;
                        };
                        let hop = st.packet.hop;
                        let r = &st.packet.route;
                        let hits_dead = r.nodes[hop..].iter().any(|n| net.down_nodes[n.0 as usize])
                            || r.links[hop..].iter().any(|l| net.down_links[l.0 as usize]);
                        if hits_dead && !doomed.contains(&tr.dispatch) {
                            doomed.push(tr.dispatch);
                        }
                    }
                }
                for d in doomed {
                    self.faults.as_mut().expect("state").transfer_retries += 1;
                    if let Some((job, t)) = self.kill_dispatch(ctx, d) {
                        self.retry_task(ctx, job, t);
                    }
                }
            }
            None => {}
        }
    }

    /// Tears down a committed-but-not-started dispatch: frees the core
    /// reservation and drops the in-flight transfers feeding it,
    /// returning the `(job, task)` to push through the retry path.
    fn kill_dispatch(&mut self, ctx: &mut Context<'_, DcEvent>, slot: u64) -> Option<(JobId, u32)> {
        let now = ctx.now();
        let (sid, handle) = self.dispatch_slots.remove(slot)?;
        self.committed[sid.0 as usize] -= 1;
        match self.net.as_ref().map(|n| n.comm) {
            Some(CommModel::Flow) => {
                let feeding: Vec<u64> = self
                    .flow_slots
                    .iter()
                    .filter(|(_, st)| st.dispatch == slot)
                    .map(|(k, _)| k)
                    .collect();
                for k in feeding {
                    let st = self.flow_slots.remove(k).expect("listed above");
                    if st.pending.is_none() {
                        // Admitted: pull it from the solver; freed links
                        // may idle their ports. (A pending flow occupies
                        // nothing — its FlowAdmit event finds no state
                        // and is dropped.)
                        let net = self.net.as_mut().expect("flow without network");
                        net.flows
                            .remove_flow(now, st.net_key.expect("admitted flow has a net key"));
                        if let Some(hold) = net.lpi_hold {
                            for &l in &st.route.links {
                                if net.flows.flows_on_link(l) == 0 {
                                    let ports = net.switch_ports_of_link(l);
                                    for (swi, port) in ports {
                                        Self::schedule_lpi_check(ctx, net, swi, port, now + hold);
                                    }
                                }
                            }
                        }
                    }
                }
            }
            Some(CommModel::Packet { .. }) => {
                // Dropping the transfer slots orphans their in-flight
                // packets; each is reaped when its next event finds the
                // transfer gone.
                let feeding: Vec<u64> = self
                    .transfer_slots
                    .iter()
                    .filter(|(_, st)| st.dispatch == slot)
                    .map(|(k, _)| k)
                    .collect();
                for k in feeding {
                    self.transfer_slots.remove(k);
                }
            }
            None => {}
        }
        Some((handle.id.job, handle.id.index))
    }

    /// Pushes a fault-killed task through the retry policy: bounded
    /// attempts with exponential sim-time backoff, then abandonment.
    fn retry_task(&mut self, ctx: &mut Context<'_, DcEvent>, job: JobId, t: u32) {
        let max = self
            .faults
            .as_ref()
            .expect("retry without fault state")
            .retry
            .max_retries;
        enum Outcome {
            Skip,
            Abandon,
            Retry { attempt: u32, first: bool },
        }
        let outcome = {
            let js = self.jobs.get_mut(job);
            if js.is_abandoned() {
                Outcome::Skip
            } else {
                let attempt = js.note_retry(t);
                if attempt > max {
                    // Budget exhausted: the job stays in the table with
                    // unfinished work and counts as unfinished forever.
                    js.mark_abandoned();
                    Outcome::Abandon
                } else {
                    let first = js.mark_fault_affected();
                    js.clear_transfers(t);
                    Outcome::Retry { attempt, first }
                }
            }
        };
        let f = self.faults.as_mut().expect("state");
        match outcome {
            Outcome::Skip => {}
            Outcome::Abandon => f.jobs_abandoned += 1,
            Outcome::Retry { attempt, first } => {
                f.retries_total += 1;
                if first {
                    f.jobs_retried += 1;
                }
                f.retries_in_flight += 1;
                let slot = f.retry_slots.insert((job, t));
                let delay = f.retry.delay(attempt);
                ctx.schedule_in(delay, DcEvent::RetryDispatch { slot });
            }
        }
    }

    /// A retry backoff expired: re-place the task (unless its job was
    /// abandoned in the meantime).
    fn on_retry_dispatch(&mut self, ctx: &mut Context<'_, DcEvent>, slot: u64) {
        let (job, t) = {
            let f = self.faults.as_mut().expect("retry without fault state");
            f.retries_in_flight -= 1;
            match f.retry_slots.remove(slot) {
                Some(e) => e,
                None => return,
            }
        };
        if self.jobs.get(job).is_abandoned() {
            return;
        }
        self.place_or_queue(ctx, job, t);
        self.schedule_flow_retimes(ctx);
    }
}

impl Model for Datacenter {
    type Event = DcEvent;

    fn handle(&mut self, ctx: &mut Context<'_, DcEvent>, event: DcEvent) {
        match event {
            DcEvent::Init => self.on_init(ctx),
            DcEvent::JobArrival => self.on_job_arrival(ctx),
            DcEvent::TaskComplete {
                server,
                core,
                task,
                gen,
            } => {
                // A crash bumped the generation: the task died with it.
                if gen != self.crash_gen(server) {
                    return;
                }
                self.on_task_complete(ctx, server, core, task)
            }
            DcEvent::ServerTimer { server, gen } => {
                self.servers[server.0 as usize].timer_fired(ctx.now(), gen, &mut self.fx);
                Self::apply_effects(ctx, server, &self.fx, self.crash_gen(server));
            }
            DcEvent::ServerTransition { server, gen } => {
                if gen != self.crash_gen(server) {
                    return;
                }
                self.servers[server.0 as usize].transition_done(ctx.now(), &mut self.fx);
                Self::apply_effects(ctx, server, &self.fx, self.crash_gen(server));
                self.pull_global_queue(ctx, server);
                // Transfer admissions from the pulls above are batched.
                self.schedule_flow_retimes(ctx);
            }
            DcEvent::FlowsAdvance => self.on_flows_advance(ctx),
            DcEvent::FlowAdmit { flow } => self.on_flow_admit(ctx, flow),
            DcEvent::PacketArrive { slot } => self.on_packet_arrive(ctx, slot),
            DcEvent::PacketRetry { slot } => self.send_packet(ctx, slot),
            DcEvent::LpiCheck { switch, port } => self.on_lpi_check(ctx, switch, port),
            DcEvent::ControllerTick => self.on_controller_tick(ctx),
            DcEvent::StatsSample => self.on_stats_sample(ctx),
            DcEvent::RemoteJobArrive { slot } => self.on_remote_job_arrive(ctx, slot),
            DcEvent::FaultInject { fault } | DcEvent::FaultRecover { fault } => {
                self.on_fault(ctx, fault)
            }
            DcEvent::RetryDispatch { slot } => self.on_retry_dispatch(ctx, slot),
        }
    }
}

impl ProbeSource for Datacenter {
    fn probe_names(&self) -> Vec<&'static str> {
        let mut names = vec![
            "global_queue_depth",
            "busy_cores",
            "awake_servers",
            "sleeping_servers",
            "jobs_in_flight",
        ];
        if self.net.is_some() {
            names.extend([
                "active_flows",
                "flow_dirty_set",
                "mean_link_utilization",
                "packets_in_flight",
            ]);
        }
        if self.faults.is_some() {
            names.extend(["down_servers", "down_links", "retries_in_flight"]);
        }
        names
    }

    fn probe_sample(&self, out: &mut Vec<f64>) {
        out.push(self.global_queue.len() as f64);
        let busy: u32 = self.servers.iter().map(|s| s.busy_cores()).sum();
        out.push(busy as f64);
        let awake = self.awake_servers();
        out.push(awake as f64);
        out.push((self.servers.len() - awake) as f64);
        out.push(self.jobs.in_flight() as f64);
        if let Some(net) = &self.net {
            out.push(net.flows.active_flows() as f64);
            out.push(net.flows.last_solve_touched() as f64);
            let links = net.topology.links().len();
            let mean_util = if links == 0 {
                0.0
            } else {
                (0..links)
                    .map(|i| net.flows.link_utilization(LinkId(i as u32)))
                    .sum::<f64>()
                    / links as f64
            };
            out.push(mean_util);
            out.push((self.packet_slots.len() - self.free_slots.len()) as f64);
        }
        if let Some(f) = &self.faults {
            out.push(f.down_since.iter().filter(|d| d.is_some()).count() as f64);
            let down_links = self
                .net
                .as_ref()
                .map_or(0, |n| n.down_links.iter().filter(|&&d| d).count());
            out.push(down_links as f64);
            out.push(f.retries_in_flight as f64);
        }
    }
}

/// A server-indexed wake-cost table over the driver's reusable scratch
/// vector; only entries for the current candidate set are meaningful.
struct CostTable<'a>(&'a [f64]);

impl NetworkCost for CostTable<'_> {
    fn wake_cost(&self, server: ServerId) -> f64 {
        self.0[server.0 as usize]
    }
}

/// A configured simulation, ready to run.
///
/// # Examples
///
/// ```
/// use holdcsim::config::SimConfig;
/// use holdcsim::sim::Simulation;
/// use holdcsim_des::time::SimDuration;
/// use holdcsim_workload::presets::WorkloadPreset;
///
/// let cfg = SimConfig::server_farm(
///     4, 2, 0.3,
///     WorkloadPreset::WebSearch.template(),
///     SimDuration::from_secs(5),
/// );
/// let report = Simulation::new(cfg).run();
/// assert!(report.jobs_completed > 0);
/// assert!(report.latency.mean >= 0.005 * 0.9);
/// ```
#[derive(Debug)]
pub struct Simulation {
    engine: Engine<Datacenter, Observer>,
}

impl Simulation {
    /// Builds the simulation from a configuration (including its
    /// [`SimConfig::obs`] observability settings).
    pub fn new(cfg: SimConfig) -> Self {
        let duration = cfg.duration;
        let dc = Datacenter::new(cfg);
        let observer = Observer::for_model(&dc.cfg.obs, &dc);
        let mut engine = Engine::with_observer(dc, observer);
        engine.schedule_at(SimTime::ZERO, DcEvent::Init);
        engine.schedule_at(SimTime::ZERO, DcEvent::StatsSample);
        engine.schedule_at(SimTime::ZERO, DcEvent::ControllerTick);
        // Scheduled faults go on the calendar up front: their instants
        // are fixed at materialization, so federated sites see the same
        // schedule regardless of how their windows are driven.
        let fault_events: Vec<(SimTime, DcEvent)> =
            engine.model().faults.as_ref().map_or_else(Vec::new, |f| {
                f.schedule
                    .iter()
                    .enumerate()
                    .filter(|(_, ev)| ev.at <= duration)
                    .map(|(i, ev)| {
                        let e = if ev.kind.is_recovery() {
                            DcEvent::FaultRecover { fault: i as u32 }
                        } else {
                            DcEvent::FaultInject { fault: i as u32 }
                        };
                        (SimTime::ZERO + ev.at, e)
                    })
                    .collect()
            });
        for (at, e) in fault_events {
            engine.schedule_at(at, e);
        }
        // First arrival.
        let first = {
            let dc = engine.model_mut();
            dc.arrivals.next_gap(&mut dc.rng_workload)
        };
        if let Some(gap) = first {
            if gap <= duration {
                engine.schedule_at(SimTime::ZERO + gap, DcEvent::JobArrival);
            }
        }
        Simulation { engine }
    }

    /// Read access to the model (for tests and custom harnesses).
    pub fn datacenter(&self) -> &Datacenter {
        self.engine.model()
    }

    /// Advances the simulation clock to `at` (events at exactly `at` are
    /// processed), for mid-run inspection via
    /// [`datacenter`](Self::datacenter) before [`run`](Self::run).
    pub fn run_to(&mut self, at: SimTime) {
        self.engine.run_until(at);
    }

    /// Consumes the simulation, exposing the underlying engine — the
    /// building block for coordinators that drive several sites in
    /// lockstep (see the `holdcsim-cluster` crate). The engine comes
    /// fully initialized (init/sampling/first-arrival events scheduled)
    /// and carries the observer built from [`SimConfig::obs`].
    pub fn into_engine(self) -> Engine<Datacenter, Observer> {
        self.engine
    }

    /// Runs to the configured horizon and produces the report.
    pub fn run(self) -> SimReport {
        self.run_with_obs().0
    }

    /// Runs to the configured horizon and produces the report plus
    /// whatever the observer collected (empty artifacts when
    /// [`SimConfig::obs`] left everything off).
    #[allow(clippy::disallowed_methods)] // summary-only wall_s; excluded from to_json (see analysis.toml D002 entry)
    pub fn run_with_obs(mut self) -> (SimReport, ObsArtifacts) {
        let end = SimTime::ZERO + self.engine.model().cfg.duration;
        let t0 = std::time::Instant::now();
        self.engine.run_until(end);
        let wall_s = t0.elapsed().as_secs_f64();
        let events = self.engine.events_processed();
        let (dc, observer) = self.engine.into_parts();
        (finish_report(dc, end, events, wall_s), observer.finish(end))
    }
}

/// Builds the final [`SimReport`] from a datacenter whose clock reached
/// `end` after `events` engine events in `wall_s` wall-clock seconds —
/// shared by [`Simulation::run`] and federation coordinators that drive
/// the engine themselves (which pass the whole federation's wall clock).
pub fn finish_report(dc: Datacenter, end: SimTime, events: u64, wall_s: f64) -> SimReport {
    let servers: Vec<ServerReport> = dc
        .servers
        .iter()
        .map(|s| ServerReport::snapshot(s, end))
        .collect();
    let network = dc.net.as_ref().map(|n| NetworkReport {
        switch_energy_j: n.switch_energy_j(end),
        mean_switch_power_w: n.switch_energy_j(end) / dc.cfg.duration.as_secs_f64(),
        flows: n.flows.total_admitted(),
        packets_forwarded: n.packets.forwarded(),
        packets_dropped: n.packets.dropped(),
        topology: n.name.clone(),
    });
    let jobs_submitted = dc.jobs.submitted();
    let jobs_completed = dc.jobs.completed();
    let gq = dc.global_queue.total_enqueued();
    let resilience = dc.faults.as_ref().map(|f| {
        // Outages still open at the horizon count up to `end`.
        let add_open = |acc: f64, stamps: &[Option<SimTime>]| {
            stamps.iter().flatten().fold(acc, |a, &t| {
                a + end.saturating_duration_since(t).as_secs_f64()
            })
        };
        let horizon = dc.cfg.duration.as_secs_f64();
        let server_downtime_s = add_open(f.server_downtime_s, &f.down_since);
        let cap = dc.cfg.server_count as f64 * horizon;
        ResilienceReport {
            faults_injected: f.faults_injected,
            server_downtime_s,
            availability: if cap > 0.0 {
                1.0 - server_downtime_s / cap
            } else {
                1.0
            },
            tasks_killed: f.tasks_killed,
            jobs_retried: f.jobs_retried,
            retries: f.retries_total,
            jobs_abandoned: f.jobs_abandoned,
            jobs_unfinished: dc.jobs.in_flight() as u64,
            transfer_retries: f.transfer_retries,
            switch_downtime_s: add_open(f.switch_downtime_s, &f.switch_down_since),
            link_downtime_s: add_open(f.link_downtime_s, &f.link_down_since),
            wan_link_downtime_s: 0.0,
            goodput_jobs_per_s: if horizon > 0.0 {
                jobs_completed as f64 / horizon
            } else {
                0.0
            },
            clean: latency_report(&f.clean_lat).0,
            affected: latency_report(&f.affected_lat).0,
        }
    });
    let (latency_samples, series) = dc.metrics.finish(end);
    let (latency, latency_cdf) = latency_report(&latency_samples);
    SimReport {
        duration: dc.cfg.duration,
        jobs_submitted,
        jobs_completed,
        latency,
        latency_cdf,
        servers,
        network,
        series,
        events_processed: events,
        global_queue_tasks: gq,
        resilience,
        wall_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_server::policy::SleepPolicy;
    use holdcsim_workload::presets::WorkloadPreset;

    fn quick_cfg(rho: f64, secs: u64) -> SimConfig {
        SimConfig::server_farm(
            4,
            2,
            rho,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(secs),
        )
    }

    #[test]
    fn farm_completes_jobs_with_sane_latency() {
        let report = Simulation::new(quick_cfg(0.3, 20)).run();
        assert!(report.jobs_completed > 1_000);
        // M/M/c-ish: latency at rho=0.3 should be near the 5 ms service time.
        assert!(
            report.latency.mean > 0.004 && report.latency.mean < 0.02,
            "mean latency {}",
            report.latency.mean
        );
        assert!(report.latency.p99 >= report.latency.p90);
        assert!(report.server_energy_j() > 0.0);
    }

    #[test]
    fn same_seed_same_report() {
        let a = Simulation::new(quick_cfg(0.3, 5)).run();
        let b = Simulation::new(quick_cfg(0.3, 5)).run();
        assert_eq!(a.jobs_completed, b.jobs_completed);
        assert_eq!(a.latency.p95, b.latency.p95);
        assert_eq!(a.events_processed, b.events_processed);
        assert!((a.server_energy_j() - b.server_energy_j()).abs() < 1e-9);
    }

    #[test]
    fn different_seeds_differ() {
        let a = Simulation::new(quick_cfg(0.3, 5)).run();
        let b = Simulation::new(quick_cfg(0.3, 5).with_seed(7)).run();
        assert_ne!(a.jobs_completed, b.jobs_completed);
    }

    #[test]
    fn higher_utilization_more_jobs_and_energy() {
        let lo = Simulation::new(quick_cfg(0.1, 10)).run();
        let hi = Simulation::new(quick_cfg(0.6, 10)).run();
        assert!(hi.jobs_completed > 3 * lo.jobs_completed);
        assert!(hi.server_energy_j() > lo.server_energy_j());
        assert!(hi.mean_utilization() > lo.mean_utilization());
    }

    #[test]
    fn delay_timer_saves_energy_at_low_load() {
        let base = quick_cfg(0.1, 60);
        let active_idle = Simulation::new(base.clone()).run();
        let with_timer = Simulation::new(
            base.with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_millis(200)))
                .with_policy(PolicyKind::PackFirst),
        )
        .run();
        assert!(
            with_timer.server_energy_j() < active_idle.server_energy_j() * 0.8,
            "timer {} vs active-idle {}",
            with_timer.server_energy_j(),
            active_idle.server_energy_j()
        );
        // Jobs still complete.
        assert!(with_timer.jobs_completed as f64 > active_idle.jobs_completed as f64 * 0.9);
    }

    #[test]
    fn series_lengths_match_duration() {
        let report = Simulation::new(quick_cfg(0.3, 10)).run();
        // Sampled every second from 0 through 10 inclusive.
        assert_eq!(report.series.active_jobs.len(), 11);
        assert_eq!(report.series.server_power_w.len(), 11);
        assert!(report.series.server_power_w.iter().all(|&w| w > 0.0));
    }

    #[test]
    fn json_and_summary_render() {
        let report = Simulation::new(quick_cfg(0.3, 2)).run();
        let json = report.to_json();
        assert!(json.contains("\"jobs_completed\""));
        assert!(report.summary().contains("jobs:"));
    }

    /// A network run exercising every slot-indexed table at once: two-tier
    /// jobs (every edge crosses the fat tree), server classes (per-class
    /// global-queue sub-queues), the global queue (dispatch slots under
    /// commitment), and the chosen communication model (flow slots or
    /// transfer slots).
    fn slot_indexed_cfg(comm: CommModel) -> SimConfig {
        use holdcsim_workload::service::ServiceDist;
        use holdcsim_workload::templates::JobTemplate;
        let template = JobTemplate::two_tier(
            ServiceDist::Exponential {
                mean: SimDuration::from_millis(4),
            },
            ServiceDist::Exponential {
                mean: SimDuration::from_millis(6),
            },
            48_000,
        );
        let mut cfg = SimConfig::server_farm(8, 2, 0.5, template, SimDuration::from_secs(3));
        cfg.server_classes = (0..8).map(|i| (i % 2) as u32).collect();
        cfg.use_global_queue = true;
        let mut net = crate::config::NetworkConfig::fat_tree(4);
        net.comm = comm;
        cfg.network = Some(net);
        cfg
    }

    #[test]
    fn packet_mode_fixed_seed_reports_are_bitwise_identical() {
        let comm = CommModel::Packet {
            mtu: 1_500,
            buffer_bytes: 1 << 20,
        };
        let a = Simulation::new(slot_indexed_cfg(comm)).run();
        let b = Simulation::new(slot_indexed_cfg(comm)).run();
        assert_eq!(a.to_json(), b.to_json(), "same seed, same report bytes");
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.jobs_completed > 500, "jobs {}", a.jobs_completed);
        let net = a.network.as_ref().expect("network report");
        assert!(
            net.packets_forwarded > 10_000,
            "transfers really packetized"
        );
    }

    #[test]
    fn flow_mode_fixed_seed_reports_are_bitwise_identical() {
        let a = Simulation::new(slot_indexed_cfg(CommModel::Flow)).run();
        let b = Simulation::new(slot_indexed_cfg(CommModel::Flow)).run();
        assert_eq!(a.to_json(), b.to_json(), "same seed, same report bytes");
        assert_eq!(a.events_processed, b.events_processed);
        assert!(a.jobs_completed > 500, "jobs {}", a.jobs_completed);
        let net = a.network.as_ref().expect("network report");
        assert!(net.flows > 1_000, "transfers really flowed");
    }

    /// The incremental and cohort fair-share solvers must retrace the
    /// reference arm's whole trajectory: fixed-point integer shares (and
    /// the cohort arm's exact virtual-time clocks) keep all three
    /// solvers' rates equal far below the nanosecond event resolution,
    /// so the full reports (jobs, latencies, energies, event counts)
    /// come out byte-identical.
    #[test]
    fn flow_solver_arms_produce_identical_reports() {
        use holdcsim_network::flow::FlowSolverKind;
        let mut ref_cfg = slot_indexed_cfg(CommModel::Flow);
        ref_cfg
            .network
            .as_mut()
            .expect("network configured")
            .flow_solver = FlowSolverKind::Reference;
        let reference = Simulation::new(ref_cfg).run();
        for kind in [FlowSolverKind::Incremental, FlowSolverKind::Cohort] {
            let mut cfg = slot_indexed_cfg(CommModel::Flow);
            cfg.network
                .as_mut()
                .expect("network configured")
                .flow_solver = kind;
            let other = Simulation::new(cfg).run();
            assert_eq!(
                reference.to_json(),
                other.to_json(),
                "{} arm must agree with reference byte-for-byte",
                kind.label()
            );
            let (a, b) = (
                reference.network.as_ref().expect("network report"),
                other.network.as_ref().expect("network report"),
            );
            assert_eq!(a.flows, b.flows, "identical completed-flow counts");
        }
    }

    #[test]
    fn crash_and_recovery_retry_work_and_report_availability() {
        use holdcsim_faults::FaultPlan;
        let mut cfg = quick_cfg(0.5, 10);
        cfg.faults =
            Some(FaultPlan::parse("crash@2s:0; recover@4s:0; crash@3s:1; recover@5s:1").unwrap());
        let report = Simulation::new(cfg).run();
        let res = report.resilience.as_ref().expect("resilience section");
        assert_eq!(res.faults_injected, 2);
        assert!(res.tasks_killed > 0, "killed {}", res.tasks_killed);
        assert!(res.jobs_retried > 0 && res.retries >= res.jobs_retried);
        // Two servers each down 2 s out of 4×10 server-seconds.
        assert!(
            (res.server_downtime_s - 4.0).abs() < 1e-9,
            "downtime {}",
            res.server_downtime_s
        );
        assert!((res.availability - 0.9).abs() < 1e-9);
        // No job lost: everything is done or accounted unfinished.
        assert_eq!(
            report.jobs_submitted,
            report.jobs_completed + res.jobs_unfinished
        );
        assert!(res.jobs_abandoned <= res.jobs_unfinished);
        assert!(report.jobs_completed > 100);
        // Both latency splits rendered (clean jobs certainly exist).
        assert!(res.clean.count > 0);
        let json = report.to_json();
        assert!(json.contains("\"resilience\""));
        assert!(report.summary().contains("resilience:"));
    }

    #[test]
    fn empty_fault_plan_is_bitwise_invisible() {
        use holdcsim_faults::FaultPlan;
        let base = Simulation::new(slot_indexed_cfg(CommModel::Flow)).run();
        let mut cfg = slot_indexed_cfg(CommModel::Flow);
        cfg.faults = Some(FaultPlan::default());
        let with_empty = Simulation::new(cfg).run();
        assert_eq!(base.to_json(), with_empty.to_json());
    }

    #[test]
    fn switch_outage_reroutes_transfers_without_losing_jobs() {
        use holdcsim_faults::FaultPlan;
        for comm in [
            CommModel::Flow,
            CommModel::Packet {
                mtu: 1_500,
                buffer_bytes: 1 << 20,
            },
        ] {
            let mut cfg = slot_indexed_cfg(comm);
            cfg.faults = Some(FaultPlan::parse("switch-down@1s:0; switch-up@2s:0").unwrap());
            let report = Simulation::new(cfg).run();
            let res = report.resilience.as_ref().expect("resilience section");
            assert_eq!(
                report.jobs_submitted,
                report.jobs_completed + res.jobs_unfinished
            );
            assert!(
                (res.switch_downtime_s - 1.0).abs() < 1e-9,
                "switch downtime {}",
                res.switch_downtime_s
            );
            assert!(
                report.jobs_completed > 100,
                "jobs {}",
                report.jobs_completed
            );
        }
    }

    #[test]
    fn fault_runs_are_deterministic() {
        use holdcsim_faults::FaultPlan;
        let build = || {
            let mut cfg = slot_indexed_cfg(CommModel::Flow);
            cfg.faults = Some(
                FaultPlan::parse(
                    "crash@500ms:2; recover@1500ms:2; switch-down@1s:1; switch-up@2s:1; \
                     straggle@800ms:5,0.5,400ms; mtbf:server=7,mtbf=900ms,mttr=150ms",
                )
                .unwrap(),
            );
            cfg
        };
        let a = Simulation::new(build()).run();
        let b = Simulation::new(build()).run();
        assert_eq!(a.to_json(), b.to_json(), "fault runs must be reproducible");
        let res = a.resilience.as_ref().expect("resilience section");
        assert!(res.faults_injected > 0);
        assert_eq!(a.jobs_submitted, a.jobs_completed + res.jobs_unfinished);
    }

    #[test]
    fn steady_state_routes_come_from_the_cache() {
        // With bounded ECMP buckets the route cache must serve the steady
        // state: misses are bounded by (pairs × ways), hits grow with the
        // transfer count.
        let mut sim = Simulation::new(slot_indexed_cfg(CommModel::Flow));
        sim.run_to(SimTime::ZERO + SimDuration::from_secs(3));
        let (hits, misses) = sim
            .datacenter()
            .net()
            .expect("network configured")
            .router
            .route_cache_stats();
        assert!(
            hits > 4 * misses,
            "route cache should serve steady-state transfers: {hits} hits / {misses} misses"
        );
    }
}
