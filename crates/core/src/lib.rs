//! # holdcsim
//!
//! HolDCSim-RS: a holistic, event-driven data-center simulator that jointly
//! models servers and networks, reproducing *HolDCSim: A Holistic Simulator
//! for Data Centers* (Yao et al., IISWC 2019) in Rust.
//!
//! The crate wires the substrates together:
//!
//! * [`config`] — the experiment description (Fig. 1's inputs).
//! * [`sim`] — the [`sim::Datacenter`] event model and [`sim::Simulation`]
//!   driver.
//! * [`report`] — run outcomes: latency percentiles, energy breakdowns,
//!   residency, power/time series.
//! * [`experiments`] — ready-made harnesses for every figure and table of
//!   the paper's evaluation (single-threaded reference implementations).
//! * [`validation`] — the §V server/switch power validation methodology.
//!
//! Sweeps over these building blocks — parameter grids × replications,
//! run in parallel with per-point confidence intervals and JSONL/CSV
//! artifacts — live in the `holdcsim-harness` crate, whose `holdcsim`
//! CLI (`run` / `sweep` / `fig <n>`) is the preferred entry point for
//! reproducing the paper's figures.
//!
//! ## Quickstart
//!
//! ```
//! use holdcsim::prelude::*;
//!
//! let cfg = SimConfig::server_farm(
//!     10, 4, 0.3,
//!     WorkloadPreset::WebSearch.template(),
//!     SimDuration::from_secs(10),
//! );
//! let report = Simulation::new(cfg).run();
//! println!("{}", report.summary());
//! assert!(report.jobs_completed > 0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod config;
pub mod experiments;
pub mod export;
pub mod job;
pub mod netstate;
pub mod report;
pub mod sim;
pub mod validation;

pub use config::{
    ArrivalConfig, ClusterConfig, CommModel, ControllerConfig, NetworkConfig, PolicyKind,
    SimConfig, SiteSpec, TopologySpec, WanConfig, WanLink, WanLinkMode,
};
pub use holdcsim_sched::geo::GeoPolicy;
pub use report::{LatencyStats, NetworkReport, SeriesReport, ServerReport, SimReport};
pub use sim::{finish_report, Datacenter, DcEvent, FedPort, Simulation};

/// Convenience re-exports covering the whole stack.
pub mod prelude {
    pub use crate::config::{
        ArrivalConfig, ClusterConfig, CommModel, ControllerConfig, NetworkConfig, PolicyKind,
        SimConfig, SiteSpec, TopologySpec, WanConfig, WanLink, WanLinkMode,
    };
    pub use crate::report::{LatencyStats, SimReport};
    pub use crate::sim::{Datacenter, Simulation};
    pub use holdcsim_des::time::{SimDuration, SimTime};
    pub use holdcsim_sched::geo::GeoPolicy;
    pub use holdcsim_server::policy::{DeepState, SleepPolicy};
    pub use holdcsim_server::server::{LocalQueueMode, ServerId};
    pub use holdcsim_workload::presets::WorkloadPreset;
    pub use holdcsim_workload::service::ServiceDist;
    pub use holdcsim_workload::templates::JobTemplate;
}
