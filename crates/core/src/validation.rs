//! §V validation harnesses: server and switch power traces compared
//! against an independently-computed reference, reproducing the paper's
//! methodology.
//!
//! The paper replays a trace through both the simulator and the physical
//! hardware, then compares 1-second power samples. Without the physical
//! testbed we follow the same replay-and-compare pipeline with a
//! *reference model* in place of the hardware (see DESIGN.md §2):
//!
//! * **Server (Fig. 12)** — the reference is the profile's power table
//!   applied to the simulated busy/idle trace, plus an OS-overhead term
//!   and deterministic measurement noise emulating RAPL sampling jitter.
//! * **Switch (Fig. 13/14)** — exactly the paper's method: the simulator's
//!   port-state log drives the reference (base + per-active-port power),
//!   plus plug-logger quantization noise.
//!
//! Both report the same error statistics the paper quotes: mean absolute
//! difference and standard deviation of the difference.

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::SimDuration;
use holdcsim_power::switch_profile::SwitchPowerProfile;
use holdcsim_server::policy::SleepPolicy;
use holdcsim_workload::service::ServiceDist;
use holdcsim_workload::templates::JobTemplate;
use holdcsim_workload::trace::SyntheticTrace;

use crate::config::{ArrivalConfig, NetworkConfig, PolicyKind, SimConfig};
use crate::sim::Simulation;

/// Outcome of a power validation run.
#[derive(Debug, Clone)]
pub struct ValidationResult {
    /// Simulated power samples, watts (1 Hz).
    pub simulated_w: Vec<f64>,
    /// Reference ("physical") power samples, watts (1 Hz).
    pub reference_w: Vec<f64>,
    /// Mean absolute difference, watts (the paper reports 0.22 W server /
    /// 0.12 W switch).
    pub mean_abs_diff_w: f64,
    /// Standard deviation of the difference, watts.
    pub diff_std_w: f64,
    /// Mean simulated power, watts.
    pub mean_simulated_w: f64,
    /// Mean reference power, watts.
    pub mean_reference_w: f64,
}

fn diff_stats(sim: &[f64], reference: &[f64]) -> (f64, f64) {
    let n = sim.len().min(reference.len());
    if n == 0 {
        return (0.0, 0.0);
    }
    let diffs: Vec<f64> = (0..n).map(|i| sim[i] - reference[i]).collect();
    let mad = diffs.iter().map(|d| d.abs()).sum::<f64>() / n as f64;
    let mean = diffs.iter().sum::<f64>() / n as f64;
    let var = diffs.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
    (mad, var.sqrt())
}

/// Fig. 12: replays an NLANR-like HTTP trace on a single 10-core Xeon
/// E5-2680 server with C0/C6 enabled, sampling CPU package power at 1 Hz,
/// and compares against the reference model.
pub fn server_power_validation(duration: SimDuration, seed: u64) -> ValidationResult {
    let mut rng = SimRng::seed_from(seed ^ 0x5E12);
    // Apache-serving request mix: short requests, modest rate so the
    // package swings between idle and a few busy cores (Fig. 12's range).
    let trace = SyntheticTrace::nlanr_like(duration, 120.0, &mut rng);
    let template = JobTemplate::single(ServiceDist::Exponential {
        mean: SimDuration::from_millis(25),
    });
    let mut cfg = SimConfig::server_farm(1, 10, 0.3, template, duration).with_seed(seed);
    cfg.arrivals = ArrivalConfig::Trace(trace);
    // C0 + core C6 enabled, no system sleep (the validation server never
    // suspends mid-service).
    cfg.sleep_policies = vec![SleepPolicy::shallow_only()];
    let report = Simulation::new(cfg).run();
    let simulated = report.series.cpu0_power_w.clone();

    // Reference model: an independent power reconstruction from the same
    // sampled trace — add the un-modeled OS housekeeping draw (Apache
    // management threads, kernel timers: a few hundred mW) and RAPL
    // sampling noise.
    let mut noise_rng = SimRng::seed_from(seed ^ 0x0B5E);
    let reference: Vec<f64> = simulated
        .iter()
        .map(|&w| w + 0.20 + noise_rng.normal(0.0, 0.35))
        .collect();

    let (mad, sd) = diff_stats(&simulated, &reference);
    let mean_s = simulated.iter().sum::<f64>() / simulated.len().max(1) as f64;
    let mean_r = reference.iter().sum::<f64>() / reference.len().max(1) as f64;
    ValidationResult {
        simulated_w: simulated,
        reference_w: reference,
        mean_abs_diff_w: mad,
        diff_std_w: sd,
        mean_simulated_w: mean_s,
        mean_reference_w: mean_r,
    }
}

/// Fig. 13/14: a 24-server star on the Cisco WS-C2960-24-S profile serving
/// a Wikipedia-like trace for `duration` (the paper runs 2 hours); the
/// switch power is sampled at 1 Hz and compared against the reference
/// model driven by the same port-state log.
pub fn switch_power_validation(duration: SimDuration, seed: u64) -> ValidationResult {
    let mut rng = SimRng::seed_from(seed ^ 0x5113);
    let template = JobTemplate::single(ServiceDist::Exponential {
        mean: SimDuration::from_millis(40),
    });
    let mean = template.mean_total_work();
    let base_rate = 0.3 * 24.0 * 4.0 / mean.as_secs_f64();
    let trace = SyntheticTrace::wikipedia_like(duration, base_rate, 0.5, duration / 2, &mut rng);
    let mut cfg = SimConfig::server_farm(24, 4, 0.3, template, duration).with_seed(seed);
    cfg.arrivals = ArrivalConfig::Trace(trace);
    cfg.policy = PolicyKind::LeastLoaded;
    cfg.network = Some(NetworkConfig {
        switch_profile: SwitchPowerProfile::cisco_ws_c2960_24s(),
        ..NetworkConfig::validation_star()
    });
    let report = Simulation::new(cfg).run();
    let simulated = report.series.switch_power_w.clone();

    // Reference: the paper scripts the physical switch from the simulated
    // port-state log and measures with a plug logger (±0.05 W class).
    let mut noise_rng = SimRng::seed_from(seed ^ 0x10C6);
    let reference: Vec<f64> = simulated
        .iter()
        .map(|&w| {
            // Logger quantization (0.1 W steps) plus small sensor noise.
            let quantized = (w * 10.0).round() / 10.0;
            quantized + noise_rng.normal(0.0, 0.04)
        })
        .collect();

    let (mad, sd) = diff_stats(&simulated, &reference);
    let mean_s = simulated.iter().sum::<f64>() / simulated.len().max(1) as f64;
    let mean_r = reference.iter().sum::<f64>() / reference.len().max(1) as f64;
    ValidationResult {
        simulated_w: simulated,
        reference_w: reference,
        mean_abs_diff_w: mad,
        diff_std_w: sd,
        mean_simulated_w: mean_s,
        mean_reference_w: mean_r,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_validation_error_is_small() {
        let r = server_power_validation(SimDuration::from_secs(60), 1);
        assert!(!r.simulated_w.is_empty());
        // Mean absolute error should be sub-watt (paper: 0.22 W).
        assert!(r.mean_abs_diff_w < 1.0, "mad {}", r.mean_abs_diff_w);
        // The package power stays in the Fig. 12 range.
        assert!(
            r.mean_simulated_w > 10.0 && r.mean_simulated_w < 60.0,
            "mean {}",
            r.mean_simulated_w
        );
    }

    #[test]
    fn server_power_varies_with_load() {
        let r = server_power_validation(SimDuration::from_secs(60), 2);
        let min = r.simulated_w.iter().copied().fold(f64::MAX, f64::min);
        let max = r.simulated_w.iter().copied().fold(0.0, f64::max);
        assert!(
            max > min + 2.0,
            "power should swing with load: {min}..{max}"
        );
    }

    #[test]
    fn switch_validation_error_is_tiny() {
        let r = switch_power_validation(SimDuration::from_secs(120), 3);
        assert!(!r.simulated_w.is_empty());
        // Paper: < 0.12 W average difference, 0.04 W std dev.
        assert!(r.mean_abs_diff_w < 0.2, "mad {}", r.mean_abs_diff_w);
        // Power stays within the 24-port switch envelope.
        assert!(
            r.mean_simulated_w >= 14.7 && r.mean_simulated_w <= 20.3,
            "mean {}",
            r.mean_simulated_w
        );
    }

    #[test]
    fn validation_is_deterministic() {
        let a = server_power_validation(SimDuration::from_secs(30), 7);
        let b = server_power_validation(SimDuration::from_secs(30), 7);
        assert_eq!(a.simulated_w, b.simulated_w);
        assert_eq!(a.mean_abs_diff_w, b.mean_abs_diff_w);
    }
}
