//! Ready-made harnesses for every table and figure of the paper's
//! evaluation (§IV, §V, Table I). Each function builds the corresponding
//! experiment from public API pieces and returns structured results; the
//! `holdcsim-bench` binaries print them in the paper's row/series format.
//!
//! All harnesses take explicit scale parameters so tests can run them small
//! while the bench binaries run them at paper scale.

use std::time::Instant;

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_sched::pools::dual_timer_policies;
use holdcsim_server::policy::SleepPolicy;
use holdcsim_workload::presets::WorkloadPreset;
use holdcsim_workload::service::ServiceDist;
use holdcsim_workload::templates::JobTemplate;
use holdcsim_workload::trace::SyntheticTrace;

use holdcsim_network::flow::FlowSolverKind;

use crate::config::{ArrivalConfig, ControllerConfig, NetworkConfig, PolicyKind, SimConfig};
use crate::report::SimReport;
use crate::sim::Simulation;

// ---------------------------------------------------------------------
// Fig. 4 — resource monitoring and provisioning
// ---------------------------------------------------------------------

/// Result of the Fig. 4 provisioning study.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// Sample times, seconds.
    pub time_s: Vec<f64>,
    /// Jobs in flight per sample.
    pub active_jobs: Vec<f64>,
    /// Awake servers per sample.
    pub active_servers: Vec<f64>,
    /// The full report.
    pub report: SimReport,
}

/// Fig. 4: 50 four-core servers, Wikipedia-like trace, 3–10 ms tasks,
/// min/max load thresholds steering the number of active servers.
pub fn fig4_provisioning(servers: usize, duration: SimDuration, seed: u64) -> Fig4Result {
    let template = WorkloadPreset::Provisioning.template();
    // Load the farm to ~35 % on average so the controller has headroom to
    // park and recall servers as the diurnal trace swings.
    let mean = template.mean_total_work();
    let base_rate = 0.35 * (servers as f64) * 4.0 / mean.as_secs_f64();
    let mut rng = SimRng::seed_from(seed ^ 0xF164);
    let trace = SyntheticTrace::wikipedia_like(
        duration,
        base_rate,
        0.6,
        duration / 2, // two diurnal cycles over the run
        &mut rng,
    );
    let mut cfg = SimConfig::server_farm(servers, 4, 0.35, template, duration);
    cfg.seed = seed;
    cfg.arrivals = ArrivalConfig::Trace(trace);
    cfg.policy = PolicyKind::PackFirst;
    cfg.controller = Some(ControllerConfig::Provisioning {
        min_load: 1.0,
        max_load: 3.0,
    });
    cfg.controller_period = SimDuration::from_millis(100);
    // Parked servers suspend after a short delay timer, so the "active
    // servers" series tracks the provisioned set.
    cfg.sleep_policies = vec![SleepPolicy::delay_timer(SimDuration::from_secs(1))];
    let report = Simulation::new(cfg).run();
    let step = report.series.period.as_secs_f64();
    Fig4Result {
        time_s: (0..report.series.active_jobs.len())
            .map(|i| i as f64 * step)
            .collect(),
        active_jobs: report.series.active_jobs.clone(),
        active_servers: report.series.active_servers.clone(),
        report,
    }
}

// ---------------------------------------------------------------------
// Fig. 5 — single delay timer exploration
// ---------------------------------------------------------------------

/// One energy-vs-τ curve at a fixed utilization.
#[derive(Debug, Clone)]
pub struct DelayTimerCurve {
    /// Utilization ρ.
    pub rho: f64,
    /// `(τ seconds, farm energy joules)` points.
    pub points: Vec<(f64, f64)>,
}

impl DelayTimerCurve {
    /// The τ minimizing energy.
    pub fn optimal_tau_s(&self) -> f64 {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite energy"))
            .map(|(t, _)| t)
            .unwrap_or(0.0)
    }
}

/// The §IV-A/B farm: consolidating dispatch + provisioning controller +
/// per-server delay timer τ (shared by the Fig. 5 sweep and Fig. 6's
/// single-timer arm).
///
/// Public so the `holdcsim-harness` sweep runner can expand τ/ρ grids
/// into trial configs without duplicating the farm construction.
pub fn delay_timer_farm(
    preset: WorkloadPreset,
    rho: f64,
    servers: usize,
    cores: u32,
    tau_s: f64,
    duration: SimDuration,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::server_farm(servers, cores, rho, preset.template(), duration)
        .with_seed(seed)
        .with_policy(PolicyKind::PackFirst)
        .with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_secs_f64(tau_s)));
    // Target ~0.45-0.8 pending per core on active servers: enough headroom
    // to consolidate even at rho = 0.6.
    cfg.controller = Some(ControllerConfig::Provisioning {
        min_load: 0.45 * cores as f64,
        max_load: 0.80 * cores as f64,
    });
    cfg.controller_period = preset.mean_service();
    cfg
}

/// Fig. 5: sweeps the single delay timer τ for one workload preset at
/// several utilizations, returning one curve per ρ.
///
/// The farm is the §IV-A configuration (consolidating dispatch plus the
/// provisioning controller): as the in-flight job count fluctuates, the
/// marginal server is parked and recalled, so an over-aggressive τ pays
/// repeated suspend/resume cycles (the left wall of the U) while an
/// over-conservative one burns idle power waiting (the right wall). The
/// park/recall timescale follows the queue's natural timescale — the mean
/// service time — which is why each workload has its own optimum.
pub fn fig5_delay_timer(
    preset: WorkloadPreset,
    rhos: &[f64],
    taus_s: &[f64],
    servers: usize,
    cores: u32,
    duration: SimDuration,
    seed: u64,
) -> Vec<DelayTimerCurve> {
    rhos.iter()
        .map(|&rho| {
            let points = taus_s
                .iter()
                .map(|&tau| {
                    let cfg = delay_timer_farm(preset, rho, servers, cores, tau, duration, seed);
                    let report = Simulation::new(cfg).run();
                    (tau, report.server_energy_j())
                })
                .collect();
            DelayTimerCurve { rho, points }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 6 — dual delay timers vs Active-Idle
// ---------------------------------------------------------------------

/// One Fig. 6 bar: energies under the three strategies.
#[derive(Debug, Clone)]
pub struct DualTimerResult {
    /// Utilization ρ.
    pub rho: f64,
    /// Farm size.
    pub servers: usize,
    /// Active-Idle baseline energy, joules.
    pub energy_active_idle_j: f64,
    /// Best single-τ energy, joules.
    pub energy_single_j: f64,
    /// Dual-timer energy, joules.
    pub energy_dual_j: f64,
    /// p95 latency under dual timers, seconds.
    pub p95_dual_s: f64,
    /// p95 latency under Active-Idle, seconds.
    pub p95_active_idle_s: f64,
}

impl DualTimerResult {
    /// Energy reduction of dual timers vs Active-Idle (0–1).
    pub fn reduction_vs_active_idle(&self) -> f64 {
        1.0 - self.energy_dual_j / self.energy_active_idle_j
    }

    /// Energy reduction of dual timers vs the best single timer (0–1).
    pub fn reduction_vs_single(&self) -> f64 {
        1.0 - self.energy_dual_j / self.energy_single_j
    }
}

/// The three Fig. 6 arm configs `[active_idle, single_timer, dual_timer]`
/// for one workload at one utilization and farm size.
///
/// The Active-Idle baseline load-balances and never sleeps; the single
/// timer runs on the same provisioned farm as Fig. 5; the dual-timer
/// scheme prioritizes its high-τ pool via the consolidating dispatcher
/// (a hot pool sized to the load keeps a long timer; the rest sleep
/// quickly after bursts — \[69\]'s split).
pub fn fig6_configs(
    preset: WorkloadPreset,
    rho: f64,
    servers: usize,
    cores: u32,
    single_tau_s: f64,
    duration: SimDuration,
    seed: u64,
) -> [SimConfig; 3] {
    let base = |dispatch: PolicyKind, policy: Vec<SleepPolicy>| {
        let mut cfg = SimConfig::server_farm(servers, cores, rho, preset.template(), duration)
            .with_seed(seed)
            .with_policy(dispatch);
        cfg.sleep_policies = policy;
        cfg
    };
    let n_high = ((rho * servers as f64 * 1.3).ceil() as usize).clamp(1, servers);
    [
        base(PolicyKind::LeastLoaded, vec![SleepPolicy::active_idle()]),
        delay_timer_farm(preset, rho, servers, cores, single_tau_s, duration, seed),
        base(
            PolicyKind::PackFirst,
            dual_timer_policies(
                servers,
                n_high,
                SimDuration::from_secs_f64(single_tau_s * 4.0),
                SimDuration::from_secs_f64(single_tau_s * 0.25),
            ),
        ),
    ]
}

/// Assembles the Fig. 6 bar from the three arm reports (in
/// [`fig6_configs`] order).
pub fn fig6_from_reports(rho: f64, servers: usize, reports: &[SimReport; 3]) -> DualTimerResult {
    let [active_idle, single, dual] = reports;
    DualTimerResult {
        rho,
        servers,
        energy_active_idle_j: active_idle.server_energy_j(),
        energy_single_j: single.server_energy_j(),
        energy_dual_j: dual.server_energy_j(),
        p95_dual_s: dual.latency.p95,
        p95_active_idle_s: active_idle.latency.p95,
    }
}

/// Fig. 6: dual delay timers vs Active-Idle (and vs the best single τ) for
/// one workload at one utilization and farm size (single-threaded
/// reference; the harness runs the same arms in parallel).
pub fn fig6_dual_timer(
    preset: WorkloadPreset,
    rho: f64,
    servers: usize,
    cores: u32,
    single_tau_s: f64,
    duration: SimDuration,
    seed: u64,
) -> DualTimerResult {
    let [a, s, d] = fig6_configs(preset, rho, servers, cores, single_tau_s, duration, seed);
    let reports = [
        Simulation::new(a).run(),
        Simulation::new(s).run(),
        Simulation::new(d).run(),
    ];
    fig6_from_reports(rho, servers, &reports)
}

// ---------------------------------------------------------------------
// Fig. 8 — WASP state residency vs utilization
// ---------------------------------------------------------------------

/// One Fig. 8 stacked bar: mean residency fractions across servers.
#[derive(Debug, Clone, Copy)]
pub struct ResidencyBar {
    /// Utilization ρ.
    pub rho: f64,
    /// Fractions `(active, wakeup, idle, pkg_c6, sys_sleep)`; sums to ~1.
    pub bands: (f64, f64, f64, f64, f64),
    /// p90 job latency, seconds.
    pub p90_s: f64,
}

/// Fig. 8: state residency under the WASP-style energy-latency framework
/// across utilizations, for a 10-server × 10-core farm.
pub fn fig8_residency(
    preset: WorkloadPreset,
    rhos: &[f64],
    servers: usize,
    cores: u32,
    duration: SimDuration,
    seed: u64,
) -> Vec<ResidencyBar> {
    rhos.iter()
        .map(|&rho| {
            let mut cfg = SimConfig::server_farm(servers, cores, rho, preset.template(), duration)
                .with_seed(seed)
                .with_policy(PolicyKind::PackFirst);
            let initial_active = ((rho * servers as f64).ceil() as usize).clamp(1, servers);
            cfg.controller = Some(ControllerConfig::Pools {
                t_wakeup: 1.5 * cores as f64,
                t_sleep: 0.4 * cores as f64,
                sleep_pool_tau: SimDuration::from_secs(1),
                initial_active,
            });
            cfg.controller_period = SimDuration::from_millis(50);
            let report = Simulation::new(cfg).run();
            let n = report.servers.len() as f64;
            let mut bands = (0.0, 0.0, 0.0, 0.0, 0.0);
            for s in &report.servers {
                bands.0 += s.residency.0 / n;
                bands.1 += s.residency.1 / n;
                bands.2 += s.residency.2 / n;
                bands.3 += s.residency.3 / n;
                bands.4 += s.residency.4 / n;
            }
            ResidencyBar {
                rho,
                bands,
                p90_s: report.latency.p90,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Fig. 9 — per-server energy breakdown, delay-timer vs workload-adaptive
// ---------------------------------------------------------------------

/// Fig. 9 result: per-server CPU/DRAM/platform energies under both
/// strategies.
#[derive(Debug, Clone)]
pub struct BreakdownResult {
    /// Per-server `(cpu, dram, platform)` joules under the delay timer.
    pub delay_timer: Vec<(f64, f64, f64)>,
    /// Per-server `(cpu, dram, platform)` joules under the adaptive pools.
    pub adaptive: Vec<(f64, f64, f64)>,
    /// Total delay-timer energy, joules.
    pub total_delay_timer_j: f64,
    /// Total adaptive energy, joules.
    pub total_adaptive_j: f64,
}

impl BreakdownResult {
    /// Energy saving of the adaptive strategy vs the delay timer (0–1).
    pub fn adaptive_saving(&self) -> f64 {
        1.0 - self.total_adaptive_j / self.total_delay_timer_j
    }
}

/// Fig. 9: 10 servers × 10 cores on a Wikipedia-like trace; delay-timer
/// power management vs the workload-adaptive two-pool scheduler.
pub fn fig9_breakdown(
    servers: usize,
    cores: u32,
    duration: SimDuration,
    seed: u64,
) -> BreakdownResult {
    let template = JobTemplate::single(ServiceDist::Exponential {
        mean: SimDuration::from_millis(20),
    });
    let mean = template.mean_total_work();
    let base_rate = 0.25 * servers as f64 * cores as f64 / mean.as_secs_f64();
    let mut rng = SimRng::seed_from(seed ^ 0xF169);
    let trace = SyntheticTrace::wikipedia_like(duration, base_rate, 0.5, duration / 2, &mut rng);

    // Strategy A: per-server delay timers, load-balanced dispatch.
    let mut cfg_dt = SimConfig::server_farm(servers, cores, 0.25, template.clone(), duration)
        .with_seed(seed)
        .with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_secs(2)));
    cfg_dt.arrivals = ArrivalConfig::Trace(trace.clone());
    cfg_dt.policy = PolicyKind::LeastLoaded;
    let dt = Simulation::new(cfg_dt).run();

    // Strategy B: WASP pools, consolidating dispatch.
    let mut cfg_ad = SimConfig::server_farm(servers, cores, 0.25, template, duration)
        .with_seed(seed)
        .with_policy(PolicyKind::PackFirst);
    cfg_ad.arrivals = ArrivalConfig::Trace(trace);
    cfg_ad.controller = Some(ControllerConfig::Pools {
        t_wakeup: 1.5 * cores as f64,
        t_sleep: 0.4 * cores as f64,
        sleep_pool_tau: SimDuration::from_secs(1),
        initial_active: ((0.25 * servers as f64).ceil() as usize).max(1),
    });
    cfg_ad.controller_period = SimDuration::from_millis(50);
    let ad = Simulation::new(cfg_ad).run();

    let split = |r: &SimReport| {
        r.servers
            .iter()
            .map(|s| (s.cpu_energy_j, s.dram_energy_j, s.platform_energy_j))
            .collect::<Vec<_>>()
    };
    BreakdownResult {
        delay_timer: split(&dt),
        adaptive: split(&ad),
        total_delay_timer_j: dt.server_energy_j(),
        total_adaptive_j: ad.server_energy_j(),
    }
}

// ---------------------------------------------------------------------
// Fig. 10/11 — joint server-network optimization on a fat tree
// ---------------------------------------------------------------------

/// One policy's outcome in the Fig. 11 study.
#[derive(Debug, Clone)]
pub struct JointPolicyResult {
    /// Mean server power, watts.
    pub server_power_w: f64,
    /// Mean network (switch) power, watts.
    pub network_power_w: f64,
    /// Job latency CDF `(seconds, fraction)`.
    pub latency_cdf: Vec<(f64, f64)>,
    /// p95 latency, seconds.
    pub p95_s: f64,
    /// Jobs completed.
    pub jobs: u64,
}

/// Fig. 11 at one utilization: Server-Load-Balance vs Server-Network-Aware.
#[derive(Debug, Clone)]
pub struct JointResult {
    /// Utilization ρ.
    pub rho: f64,
    /// The load-balanced baseline.
    pub balanced: JointPolicyResult,
    /// The network-aware strategy.
    pub aware: JointPolicyResult,
}

impl JointResult {
    /// Server power saving of the aware policy (0–1).
    pub fn server_saving(&self) -> f64 {
        1.0 - self.aware.server_power_w / self.balanced.server_power_w
    }

    /// Network power saving of the aware policy (0–1).
    pub fn network_saving(&self) -> f64 {
        1.0 - self.aware.network_power_w / self.balanced.network_power_w
    }
}

/// Fig. 11: fat-tree k=4, two-tier DAG jobs with inter-task flows,
/// comparing Server-Load-Balance against Server-Network-Aware placement.
///
/// `drain` is the slack appended after the last arrival so in-flight jobs
/// finish; the horizon itself is sized from `jobs` and the arrival rate.
pub fn fig11_joint(
    rho: f64,
    jobs: usize,
    flow_bytes: u64,
    drain: SimDuration,
    seed: u64,
) -> JointResult {
    let k = 4;
    let servers = k * k * k / 4; // 16 hosts
    let cores = 4u32;
    // Service times in the hundreds of milliseconds so a 100 MB flow on
    // 10 GbE (~80 ms) is a comparable latency component, as in the paper's
    // 0–0.6 s response-time CDF.
    let template = JobTemplate::two_tier(
        ServiceDist::Exponential {
            mean: SimDuration::from_millis(800),
        },
        ServiceDist::Exponential {
            mean: SimDuration::from_millis(1200),
        },
        flow_bytes,
    );
    let mean = template.mean_total_work();
    let rate = rho * servers as f64 * cores as f64 / mean.as_secs_f64();
    // Arrival count capped at `jobs` via a finite trace drawn from Poisson.
    let mut rng = SimRng::seed_from(seed ^ 0xF1611);
    let mut t = SimTime::ZERO;
    let mut times = Vec::with_capacity(jobs);
    for _ in 0..jobs {
        t += SimDuration::from_secs_f64(rng.exp(rate));
        times.push(t);
    }
    let duration = *times.last().expect("jobs >= 1") - SimTime::ZERO + drain;

    let run = |policy: PolicyKind| {
        let mut cfg = SimConfig::server_farm(servers, cores, rho, template.clone(), duration)
            .with_seed(seed)
            .with_policy(policy)
            .with_sleep_policy(SleepPolicy::shallow_then_deep(SimDuration::from_secs(2)));
        // Two server tiers (app/db) interleaved so every edge switch hosts
        // both: transfers always cross the network, and placement decides
        // how many switches they touch.
        cfg.server_classes = (0..servers).map(|i| (i % 2) as u32).collect();
        cfg.arrivals = ArrivalConfig::Trace(times.clone());
        let mut net = NetworkConfig::fat_tree(k);
        net.link = holdcsim_network::topologies::LinkSpec::ten_gigabit();
        cfg.network = Some(net);
        let report = Simulation::new(cfg).run();
        JointPolicyResult {
            server_power_w: report.server_energy_j() / duration.as_secs_f64(),
            network_power_w: report
                .network
                .as_ref()
                .map_or(0.0, |n| n.mean_switch_power_w),
            latency_cdf: report.latency_cdf.clone(),
            p95_s: report.latency.p95,
            jobs: report.jobs_completed,
        }
    };
    JointResult {
        rho,
        balanced: run(PolicyKind::LeastLoaded),
        aware: run(PolicyKind::NetworkAware),
    }
}

// ---------------------------------------------------------------------
// Footnote 1 — delay timers under bursty arrivals
// ---------------------------------------------------------------------

/// One burstiness level's outcome in the footnote-1 study.
#[derive(Debug, Clone, Copy)]
pub struct BurstinessPoint {
    /// MMPP burst ratio R_a = λ_h/λ_l (1 = Poisson).
    pub burst_ratio: f64,
    /// Farm energy, joules.
    pub energy_j: f64,
    /// p95 job latency, seconds.
    pub p95_s: f64,
    /// p99 job latency, seconds.
    pub p99_s: f64,
}

/// The paper's footnote 1: "the single delay timer may not be effective
/// when the job arrivals are highly bursty". Runs the Fig. 5 farm at its
/// optimal τ while sweeping MMPP burstiness at constant mean load; energy
/// savings persist but tail latency degrades sharply as bursts catch
/// servers in deep sleep.
#[allow(clippy::too_many_arguments)]
pub fn footnote1_burstiness(
    preset: WorkloadPreset,
    rho: f64,
    burst_ratios: &[f64],
    tau_s: f64,
    servers: usize,
    cores: u32,
    duration: SimDuration,
    seed: u64,
) -> Vec<BurstinessPoint> {
    let mean = preset.mean_service().as_secs_f64();
    let base_rate = rho * servers as f64 * cores as f64 / mean;
    burst_ratios
        .iter()
        .map(|&ratio| {
            let mut cfg = delay_timer_farm(preset, rho, servers, cores, tau_s, duration, seed);
            if ratio > 1.0 {
                cfg.arrivals = ArrivalConfig::Mmpp2 {
                    base_rate,
                    burst_ratio: ratio,
                    bursty_fraction: 0.15,
                    mean_bursty_dwell: 2.0,
                };
            }
            let report = Simulation::new(cfg).run();
            BurstinessPoint {
                burst_ratio: ratio,
                energy_j: report.server_energy_j(),
                p95_s: report.latency.p95,
                p99_s: report.latency.p99,
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Table I — scalability
// ---------------------------------------------------------------------

/// One scalability measurement.
#[derive(Debug, Clone, Copy)]
pub struct ScalabilityPoint {
    /// Simulated servers.
    pub servers: usize,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_s: f64,
    /// Jobs completed.
    pub jobs: u64,
}

/// Cores per server in the Table I scalability configuration.
pub const SCALABILITY_CORES: u32 = 4;
/// Utilization of the Table I scalability configuration.
pub const SCALABILITY_RHO: f64 = 0.3;
/// Workload preset of the Table I scalability configuration.
pub const SCALABILITY_PRESET: WorkloadPreset = WorkloadPreset::WebSearch;
/// Placement policy of the Table I scalability configuration.
pub const SCALABILITY_POLICY: PolicyKind = PolicyKind::RoundRobin;

/// Table I's scalability claim (>20 K servers): runs a server-only farm at
/// the given sizes and measures event throughput.
#[allow(clippy::disallowed_methods)] // events/s vs wall-clock is the subject (see analysis.toml D002 entry)
pub fn scalability(sizes: &[usize], duration: SimDuration, seed: u64) -> Vec<ScalabilityPoint> {
    sizes
        .iter()
        .map(|&n| {
            let cfg = SimConfig::server_farm(
                n,
                SCALABILITY_CORES,
                SCALABILITY_RHO,
                SCALABILITY_PRESET.template(),
                duration,
            )
            .with_seed(seed)
            .with_policy(SCALABILITY_POLICY);
            let t0 = Instant::now();
            let report = Simulation::new(cfg).run();
            let wall = t0.elapsed().as_secs_f64();
            ScalabilityPoint {
                servers: n,
                events: report.events_processed,
                wall_s: wall,
                events_per_s: report.events_processed as f64 / wall.max(1e-9),
                jobs: report.jobs_completed,
            }
        })
        .collect()
}

/// One network-heavy scalability measurement.
#[derive(Debug, Clone, Copy)]
pub struct NetScalabilityPoint {
    /// Simulated servers.
    pub servers: usize,
    /// Communication model of this arm: `"flow"` = flow model with the
    /// incremental fair-share solver, `"flow-ref"` = reference solver,
    /// `"flow-cohort"` = cohort-cell solver, `"packet"` = packetized.
    /// The incast stress grid reuses this shape with `"incast"` /
    /// `"incast-ref"` / `"incast-cohort"` labels.
    pub comm: &'static str,
    /// Engine events processed.
    pub events: u64,
    /// Wall-clock seconds.
    pub wall_s: f64,
    /// Events per wall-clock second.
    pub events_per_s: f64,
    /// Jobs completed.
    pub jobs: u64,
    /// Flows completed (0 in packet mode) — the A/B solver arms must
    /// report identical counts.
    pub flows: u64,
}

/// Fan-out width of the network scalability configuration (each job is a
/// scatter-gather DAG with this many leaves — `2 × width` network edges).
pub const NET_SCALABILITY_FANOUT: u32 = 8;
/// Bytes per DAG edge of the network scalability configuration (~44
/// MTU-sized packets per edge in packet mode).
pub const NET_SCALABILITY_BYTES: u64 = 64 * 1024;
/// Utilization of the network scalability configuration.
pub const NET_SCALABILITY_RHO: f64 = 0.3;

/// The job template of the network scalability configuration: a
/// high-fan-out scatter-gather job (web-search style) whose every edge
/// crosses the fat tree under round-robin placement.
pub fn net_scalability_template() -> JobTemplate {
    JobTemplate::FanOutFanIn {
        root: ServiceDist::Exponential {
            mean: SimDuration::from_millis(1),
        },
        leaf: ServiceDist::Exponential {
            mean: SimDuration::from_millis(2),
        },
        agg: ServiceDist::Exponential {
            mean: SimDuration::from_millis(1),
        },
        width: NET_SCALABILITY_FANOUT,
        transfer_bytes: NET_SCALABILITY_BYTES,
    }
}

/// The smallest even fat-tree parameter `k` whose `k³/4` hosts cover `n`
/// servers.
pub fn fat_tree_k_for(n: usize) -> usize {
    let mut k = 4;
    while k * k * k / 4 < n {
        k += 2;
    }
    k
}

/// The configuration of one network scalability arm (the default —
/// incremental — flow solver; see
/// [`net_scalability_config_with_solver`]).
pub fn net_scalability_config(
    servers: usize,
    comm: crate::config::CommModel,
    duration: SimDuration,
    seed: u64,
) -> SimConfig {
    net_scalability_config_with_solver(servers, comm, duration, seed, FlowSolverKind::default())
}

/// The configuration of one network scalability arm with an explicit
/// fair-share solver (ignored in packet mode).
pub fn net_scalability_config_with_solver(
    servers: usize,
    comm: crate::config::CommModel,
    duration: SimDuration,
    seed: u64,
    solver: FlowSolverKind,
) -> SimConfig {
    let mut cfg = SimConfig::server_farm(
        servers,
        SCALABILITY_CORES,
        NET_SCALABILITY_RHO,
        net_scalability_template(),
        duration,
    )
    .with_seed(seed)
    .with_policy(SCALABILITY_POLICY);
    let mut net = NetworkConfig::fat_tree(fat_tree_k_for(servers));
    net.comm = comm;
    net.flow_solver = solver;
    cfg.network = Some(net);
    cfg
}

/// The network-heavy companion to [`scalability`]: the same farm driven
/// by high-fan-out scatter-gather jobs over a fat tree, once per
/// communication model. This is the stress case for the network hot path
/// (a transfer-table operation per packet arrival / flow completion and a
/// route per transfer), where the event rate is dominated by the network,
/// not the servers.
#[allow(clippy::disallowed_methods)] // events/s vs wall-clock is the subject (see analysis.toml D002 entry)
pub fn net_scalability(
    sizes: &[usize],
    duration: SimDuration,
    seed: u64,
    flow_solvers: &[FlowSolverKind],
) -> Vec<NetScalabilityPoint> {
    let packet = crate::config::CommModel::Packet {
        mtu: 1_500,
        buffer_bytes: 1 << 20,
    };
    let mut points = Vec::with_capacity(sizes.len() * (flow_solvers.len() + 1));
    for &n in sizes {
        let mut arms: Vec<(crate::config::CommModel, FlowSolverKind, &'static str)> = Vec::new();
        for &solver in flow_solvers {
            let label = match solver {
                FlowSolverKind::Incremental => "flow",
                FlowSolverKind::Reference => "flow-ref",
                FlowSolverKind::Cohort => "flow-cohort",
            };
            arms.push((crate::config::CommModel::Flow, solver, label));
        }
        arms.push((packet, FlowSolverKind::default(), "packet"));
        let mut flow_json: Option<String> = None;
        for (comm, solver, label) in arms {
            let cfg = net_scalability_config_with_solver(n, comm, duration, seed, solver);
            let t0 = Instant::now();
            let report = Simulation::new(cfg).run();
            let wall = t0.elapsed().as_secs_f64();
            // The solver arms simulate the same physics: every flow
            // arm's full report must be byte-identical to the first's.
            if label.starts_with("flow") {
                let json = report.to_json();
                match &flow_json {
                    None => flow_json = Some(json),
                    Some(first) => {
                        assert_eq!(first, &json, "solver arm {label} diverged at {n} servers")
                    }
                }
            }
            points.push(NetScalabilityPoint {
                servers: n,
                comm: label,
                events: report.events_processed,
                wall_s: wall,
                events_per_s: report.events_processed as f64 / wall.max(1e-9),
                jobs: report.jobs_completed,
                flows: report.network.as_ref().map_or(0, |net| net.flows),
            });
        }
    }
    points
}

/// Fan-in width of the incast stress point: every job gathers this many
/// leaf results at one aggregator, so its server downlink carries the
/// whole wave as one bottleneck cohort.
pub const NET_INCAST_FANOUT: u32 = 32;
/// Bytes per incast DAG edge (larger than the scatter-gather grid so the
/// hot set stays concurrent).
pub const NET_INCAST_BYTES: u64 = 256 * 1024;
/// Utilization of the incast stress point — deliberately overloaded so
/// rate cells stay saturated with members.
pub const NET_INCAST_RHO: f64 = 0.7;

/// The job template of the incast stress point: a wide gather whose
/// fan-in edges converge on one host's downlink.
pub fn net_incast_template() -> JobTemplate {
    JobTemplate::FanOutFanIn {
        root: ServiceDist::Exponential {
            mean: SimDuration::from_millis(1),
        },
        leaf: ServiceDist::Exponential {
            mean: SimDuration::from_millis(2),
        },
        agg: ServiceDist::Exponential {
            mean: SimDuration::from_millis(1),
        },
        width: NET_INCAST_FANOUT,
        transfer_bytes: NET_INCAST_BYTES,
    }
}

/// The configuration of one incast stress arm with an explicit
/// fair-share solver.
pub fn net_incast_config_with_solver(
    servers: usize,
    duration: SimDuration,
    seed: u64,
    solver: FlowSolverKind,
) -> SimConfig {
    let mut cfg = SimConfig::server_farm(
        servers,
        SCALABILITY_CORES,
        NET_INCAST_RHO,
        net_incast_template(),
        duration,
    )
    .with_seed(seed)
    .with_policy(SCALABILITY_POLICY);
    let mut net = NetworkConfig::fat_tree(fat_tree_k_for(servers));
    net.comm = crate::config::CommModel::Flow;
    net.flow_solver = solver;
    cfg.network = Some(net);
    cfg
}

/// The high-contention companion grid to [`net_scalability`]: the same
/// fat-tree farm under wide-gather incast at overload, flow mode only.
/// This is the regime where bottleneck cohorts dominate — each hot
/// downlink carries a whole job's fan-in — so it isolates the cohort
/// solver's O(links) update cost from the per-flow arms' O(flows).
#[allow(clippy::disallowed_methods)] // events/s vs wall-clock is the subject (see analysis.toml D002 entry)
pub fn net_incast(
    sizes: &[usize],
    duration: SimDuration,
    seed: u64,
    flow_solvers: &[FlowSolverKind],
) -> Vec<NetScalabilityPoint> {
    let mut points = Vec::with_capacity(sizes.len() * flow_solvers.len());
    for &n in sizes {
        let mut arm_json: Option<String> = None;
        for &solver in flow_solvers {
            let label = match solver {
                FlowSolverKind::Incremental => "incast",
                FlowSolverKind::Reference => "incast-ref",
                FlowSolverKind::Cohort => "incast-cohort",
            };
            let cfg = net_incast_config_with_solver(n, duration, seed, solver);
            let t0 = Instant::now();
            let report = Simulation::new(cfg).run();
            let wall = t0.elapsed().as_secs_f64();
            // Every solver arm's full report must be byte-identical to
            // the first's — same physics, same trajectory.
            let json = report.to_json();
            match &arm_json {
                None => arm_json = Some(json),
                Some(first) => assert_eq!(
                    first, &json,
                    "solver arm {label} diverged at {n} servers (incast)"
                ),
            }
            points.push(NetScalabilityPoint {
                servers: n,
                comm: label,
                events: report.events_processed,
                wall_s: wall,
                events_per_s: report.events_processed as f64 / wall.max(1e-9),
                jobs: report.jobs_completed,
                flows: report.network.as_ref().map_or(0, |net| net.flows),
            });
        }
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_controller_parks_servers() {
        let r = fig4_provisioning(10, SimDuration::from_secs(30), 1);
        // The controller should end up using far fewer than all servers.
        let min_active = r.active_servers.iter().copied().fold(f64::MAX, f64::min);
        assert!(min_active < 9.0, "min active {min_active}");
        assert!(r.report.jobs_completed > 100);
        assert_eq!(r.time_s.len(), r.active_jobs.len());
    }

    #[test]
    fn fig5_curves_have_u_shape_tendency() {
        let curves = fig5_delay_timer(
            WorkloadPreset::WebSearch,
            &[0.3],
            &[0.05, 1.0, 30.0],
            8,
            2,
            SimDuration::from_secs(30),
            3,
        );
        assert_eq!(curves.len(), 1);
        let pts = &curves[0].points;
        assert_eq!(pts.len(), 3);
        // A very long timer must not beat the mid timer (it never sleeps).
        assert!(
            pts[1].1 <= pts[2].1 * 1.05,
            "mid {} vs long {}",
            pts[1].1,
            pts[2].1
        );
    }

    #[test]
    fn fig6_dual_beats_active_idle() {
        let r = fig6_dual_timer(
            WorkloadPreset::WebSearch,
            0.1,
            8,
            2,
            0.5,
            SimDuration::from_secs(40),
            5,
        );
        assert!(
            r.reduction_vs_active_idle() > 0.2,
            "reduction {}",
            r.reduction_vs_active_idle()
        );
    }

    #[test]
    fn fig8_bands_sum_to_one() {
        let bars = fig8_residency(
            WorkloadPreset::WebSearch,
            &[0.2, 0.6],
            4,
            4,
            SimDuration::from_secs(20),
            7,
        );
        for b in &bars {
            let sum = b.bands.0 + b.bands.1 + b.bands.2 + b.bands.3 + b.bands.4;
            assert!((sum - 1.0).abs() < 1e-6, "bands sum {sum}");
        }
        // Higher utilization means more active time.
        assert!(bars[1].bands.0 > bars[0].bands.0);
    }

    #[test]
    fn fig9_adaptive_concentrates_and_saves() {
        let r = fig9_breakdown(4, 4, SimDuration::from_secs(30), 9);
        assert!(r.adaptive_saving() > 0.0, "saving {}", r.adaptive_saving());
        // Adaptive load is skewed: the busiest server does much more work
        // than the idlest (delay-timer spread is flatter).
        let cpu: Vec<f64> = r.adaptive.iter().map(|s| s.0).collect();
        let max = cpu.iter().copied().fold(0.0, f64::max);
        let min = cpu.iter().copied().fold(f64::MAX, f64::min);
        assert!(max > 1.5 * min, "adaptive skew {max} vs {min}");
    }

    #[test]
    fn footnote1_burstiness_degrades_tails() {
        let pts = footnote1_burstiness(
            WorkloadPreset::WebSearch,
            0.2,
            &[1.0, 10.0],
            0.4,
            8,
            2,
            SimDuration::from_secs(40),
            13,
        );
        assert_eq!(pts.len(), 2);
        // Heavy bursts push p99 well past the Poisson case.
        assert!(
            pts[1].p99_s > pts[0].p99_s * 1.5,
            "bursty p99 {} vs poisson {}",
            pts[1].p99_s,
            pts[0].p99_s
        );
    }

    #[test]
    fn scalability_runs_at_1k() {
        let pts = scalability(&[1_000], SimDuration::from_millis(200), 11);
        assert_eq!(pts[0].servers, 1_000);
        assert!(pts[0].events > 1_000);
        assert!(
            pts[0].events_per_s > 10_000.0,
            "rate {}",
            pts[0].events_per_s
        );
    }
}
