//! Plot-ready CSV/JSON rendering of [`SimReport`]
//! contents — the hand-rolled exporter that replaces a serde dependency
//! (DESIGN.md §3). The [`JsonObj`] builder is also the substrate for the
//! `holdcsim-harness` JSONL trial artifacts.

use std::fmt::Write as _;

use crate::report::SimReport;

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders an `f64` as a JSON value: shortest round-trip decimal for
/// finite values, `null` for NaN/infinities (which JSON cannot carry).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// An incremental JSON-object builder (insertion-ordered, no nesting
/// bookkeeping — callers pass pre-rendered JSON for nested values).
#[derive(Debug, Default)]
pub struct JsonObj {
    buf: String,
}

impl JsonObj {
    /// Starts an empty object.
    pub fn new() -> Self {
        JsonObj::default()
    }

    fn sep(&mut self) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
    }

    /// Adds a numeric field (`null` if not finite).
    pub fn num(mut self, key: &str, v: f64) -> Self {
        self.sep();
        let _ = write!(self.buf, r#""{}":{}"#, json_escape(key), json_f64(v));
        self
    }

    /// Adds an integer field.
    pub fn int(mut self, key: &str, v: u64) -> Self {
        self.sep();
        let _ = write!(self.buf, r#""{}":{}"#, json_escape(key), v);
        self
    }

    /// Adds a string field.
    pub fn str(mut self, key: &str, v: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, r#""{}":"{}""#, json_escape(key), json_escape(v));
        self
    }

    /// Adds a pre-rendered JSON value (object, array, literal) verbatim.
    pub fn raw(mut self, key: &str, v: &str) -> Self {
        self.sep();
        let _ = write!(self.buf, r#""{}":{}"#, json_escape(key), v);
        self
    }

    /// Closes the object and returns the rendered JSON.
    pub fn finish(self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// Renders the sampled time series (`time_s, active_jobs, active_servers,
/// server_power_w[, switch_power_w]`) as CSV.
pub fn series_csv(report: &SimReport) -> String {
    let s = &report.series;
    let has_switch = report.network.is_some();
    let mut out = String::new();
    out.push_str("time_s,active_jobs,active_servers,server_power_w");
    if has_switch {
        out.push_str(",switch_power_w");
    }
    out.push('\n');
    let step = s.period.as_secs_f64();
    let n = s
        .active_jobs
        .len()
        .min(s.active_servers.len())
        .min(s.server_power_w.len());
    for i in 0..n {
        let _ = write!(
            out,
            "{:.3},{},{},{:.3}",
            i as f64 * step,
            s.active_jobs[i],
            s.active_servers[i],
            s.server_power_w[i]
        );
        if has_switch {
            let _ = write!(
                out,
                ",{:.3}",
                s.switch_power_w.get(i).copied().unwrap_or(0.0)
            );
        }
        out.push('\n');
    }
    out
}

/// Renders per-server outcomes (`server, cpu_j, dram_j, platform_j,
/// utilization, active, wakeup, idle, shallow, deep`) as CSV — the Fig. 8
/// and Fig. 9 data in one table.
pub fn servers_csv(report: &SimReport) -> String {
    let mut out = String::from(
        "server,cpu_j,dram_j,platform_j,utilization,active,wakeup,idle,shallow,deep\n",
    );
    for (i, s) in report.servers.iter().enumerate() {
        let (a, w, idl, sh, dp) = s.residency;
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.3},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            i,
            s.cpu_energy_j,
            s.dram_energy_j,
            s.platform_energy_j,
            s.utilization,
            a,
            w,
            idl,
            sh,
            dp
        );
    }
    out
}

/// Renders the latency CDF (`latency_s, fraction`) as CSV (Fig. 11b).
pub fn latency_cdf_csv(report: &SimReport) -> String {
    let mut out = String::from("latency_s,fraction\n");
    for &(v, f) in &report.latency_cdf {
        let _ = writeln!(out, "{v:.6},{f:.6}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;
    use crate::sim::Simulation;
    use holdcsim_des::time::SimDuration;
    use holdcsim_workload::presets::WorkloadPreset;

    fn small_report() -> SimReport {
        let cfg = SimConfig::server_farm(
            2,
            2,
            0.3,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(3),
        );
        Simulation::new(cfg).run()
    }

    #[test]
    fn series_csv_is_rectangular() {
        let report = small_report();
        let csv = series_csv(&report);
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert_eq!(header.split(',').count(), 4, "no network: 4 columns");
        let cols = header.split(',').count();
        let mut rows = 0;
        for l in lines {
            assert_eq!(l.split(',').count(), cols, "ragged row {l}");
            rows += 1;
        }
        assert_eq!(rows, report.series.active_jobs.len());
    }

    #[test]
    fn servers_csv_has_one_row_per_server() {
        let report = small_report();
        let csv = servers_csv(&report);
        assert_eq!(csv.lines().count(), 1 + report.servers.len());
        // Residency fractions in each row parse and sum to ~1.
        for l in csv.lines().skip(1) {
            let f: Vec<f64> = l.split(',').skip(5).map(|x| x.parse().unwrap()).collect();
            let sum: f64 = f.iter().sum();
            assert!((sum - 1.0).abs() < 1e-2, "row {l}");
        }
    }

    #[test]
    fn json_obj_builds_ordered_objects() {
        let j = JsonObj::new()
            .str("name", "fig \"5\"")
            .int("trials", 24)
            .num("energy_j", 1.5)
            .num("bad", f64::NAN)
            .raw("nested", r#"{"a":1}"#)
            .finish();
        assert_eq!(
            j,
            r#"{"name":"fig \"5\"","trials":24,"energy_j":1.5,"bad":null,"nested":{"a":1}}"#
        );
    }

    #[test]
    fn json_escape_control_chars() {
        assert_eq!(json_escape("a\nb\t\"c\"\\"), "a\\nb\\t\\\"c\\\"\\\\");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn latency_cdf_csv_is_monotone() {
        let report = small_report();
        let csv = latency_cdf_csv(&report);
        let fracs: Vec<f64> = csv
            .lines()
            .skip(1)
            .map(|l| l.split(',').nth(1).unwrap().parse().unwrap())
            .collect();
        assert!(!fracs.is_empty());
        assert!(fracs.windows(2).all(|w| w[0] <= w[1]));
        assert!((fracs.last().unwrap() - 1.0).abs() < 1e-9);
    }
}
