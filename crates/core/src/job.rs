//! Job lifecycle tracking: DAG readiness counting, placement, transfer
//! barriers, and completion detection (§III-C).

use holdcsim_des::slot_window::SlotWindow;
use holdcsim_des::time::SimTime;
use holdcsim_server::server::ServerId;
use holdcsim_workload::dag::JobDag;
use holdcsim_workload::ids::{JobId, TaskId};

/// One in-flight job.
#[derive(Debug)]
pub struct JobState {
    /// The job's DAG.
    pub dag: JobDag,
    /// When the job arrived at the front end.
    pub arrived: SimTime,
    /// Unfinished-predecessor counts per task.
    remaining_preds: Vec<u32>,
    /// Placement of each task once decided.
    assigned: Vec<Option<ServerId>>,
    /// Outstanding inbound transfers per task (task may not start until 0).
    pending_transfers: Vec<u32>,
    /// Tasks not yet finished.
    unfinished: u32,
    /// Fault-retry attempts per task (stays empty until the first retry;
    /// fault-free runs never touch it).
    retries: Vec<u32>,
    /// `true` once any task of this job was retried after a fault.
    fault_affected: bool,
    /// `true` once the retry budget ran out: the job will never complete
    /// and stays in the table as unfinished.
    abandoned: bool,
}

impl JobState {
    /// Creates tracking state for a job arriving at `arrived`.
    pub fn new(dag: JobDag, arrived: SimTime) -> Self {
        let mut state = JobState {
            remaining_preds: Vec::new(),
            assigned: Vec::new(),
            pending_transfers: Vec::new(),
            unfinished: 0,
            retries: Vec::new(),
            fault_affected: false,
            abandoned: false,
            dag,
            arrived,
        };
        state.reset(arrived);
        state
    }

    /// Reinitializes the tracking state for the current `dag`, reusing all
    /// allocations. Callers recycling a completed job's state rewrite
    /// `dag` first (e.g. via `JobTemplate::generate_into`), then reset.
    pub fn reset(&mut self, arrived: SimTime) {
        let n = self.dag.len();
        self.arrived = arrived;
        self.remaining_preds.clear();
        self.remaining_preds.resize(n, 0);
        for e in self.dag.edges() {
            self.remaining_preds[e.to as usize] += 1;
        }
        self.assigned.clear();
        self.assigned.resize(n, None);
        self.pending_transfers.clear();
        self.pending_transfers.resize(n, 0);
        self.unfinished = n as u32;
        self.retries.clear();
        self.fault_affected = false;
        self.abandoned = false;
    }

    /// Task indices ready at arrival (no predecessors).
    pub fn initial_ready(&self) -> Vec<u32> {
        self.dag.roots().to_vec()
    }

    /// Records that `task` finished; returns successors that became ready.
    pub fn finish_task(&mut self, task: u32) -> Vec<u32> {
        let mut ready = Vec::new();
        self.finish_task_into(task, &mut ready);
        ready
    }

    /// Records that `task` finished, appending newly ready successors to
    /// `ready` (the driver passes a reusable scratch buffer, keeping the
    /// completion hot path allocation-free).
    pub fn finish_task_into(&mut self, task: u32, ready: &mut Vec<u32>) {
        debug_assert!(self.unfinished > 0);
        self.unfinished -= 1;
        for &s in self.dag.successors(task) {
            let r = &mut self.remaining_preds[s as usize];
            debug_assert!(*r > 0);
            *r -= 1;
            if *r == 0 {
                ready.push(s);
            }
        }
    }

    /// `true` once every task has finished.
    pub fn is_complete(&self) -> bool {
        self.unfinished == 0
    }

    /// Records the placement decision for `task`.
    pub fn assign(&mut self, task: u32, server: ServerId) {
        self.assigned[task as usize] = Some(server);
    }

    /// Where `task` was placed, if yet.
    pub fn assignment(&self, task: u32) -> Option<ServerId> {
        self.assigned[task as usize]
    }

    /// Registers `n` inbound transfers that must land before `task` starts.
    pub fn add_transfers(&mut self, task: u32, n: u32) {
        self.pending_transfers[task as usize] += n;
    }

    /// One inbound transfer for `task` landed; `true` when none remain.
    pub fn transfer_done(&mut self, task: u32) -> bool {
        let p = &mut self.pending_transfers[task as usize];
        debug_assert!(*p > 0, "transfer_done without pending transfer");
        *p -= 1;
        *p == 0
    }

    /// Outstanding inbound transfers for `task`.
    pub fn pending_transfers(&self, task: u32) -> u32 {
        self.pending_transfers[task as usize]
    }

    /// Drops any outstanding inbound-transfer barriers for `task` (fault
    /// retry: the task is re-placed from scratch and its predecessors'
    /// outputs re-sent, so stale in-flight barriers must not carry over).
    pub fn clear_transfers(&mut self, task: u32) {
        self.pending_transfers[task as usize] = 0;
    }

    /// Counts one fault-retry attempt for `task`, returning the new
    /// attempt number (1 for the first). The counter vector materializes
    /// lazily so fault-free jobs carry no per-task overhead.
    pub fn note_retry(&mut self, task: u32) -> u32 {
        if self.retries.is_empty() {
            self.retries.resize(self.dag.len(), 0);
        }
        self.retries[task as usize] += 1;
        self.retries[task as usize]
    }

    /// Marks the job fault-affected; returns `true` if it was clean
    /// before (i.e. this is the job's first retry).
    pub fn mark_fault_affected(&mut self) -> bool {
        !std::mem::replace(&mut self.fault_affected, true)
    }

    /// `true` once any task of this job was retried after a fault.
    pub fn fault_affected(&self) -> bool {
        self.fault_affected
    }

    /// Gives up on the job: its retry budget is exhausted.
    pub fn mark_abandoned(&mut self) {
        self.abandoned = true;
    }

    /// `true` once the job was abandoned (it will never complete).
    pub fn is_abandoned(&self) -> bool {
        self.abandoned
    }
}

/// The table of in-flight jobs.
///
/// Job ids are allocated sequentially and jobs mostly complete in arrival
/// order — exactly the lifetime pattern [`SlotWindow`] is built for — so
/// lookups on the per-event hot path are a single index instead of a hash
/// probe, and one long-running straggler job cannot pin the window (it
/// compacts into the window's sparse overflow).
#[derive(Debug, Default)]
pub struct JobTable {
    /// In-flight jobs, keyed by job id (the window issues the ids).
    window: SlotWindow<JobState>,
    submitted: u64,
    completed: u64,
}

impl JobTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The next job id. Ids are finalized by the matching
    /// [`insert`](Self::insert), which must follow before the next
    /// allocation.
    pub fn alloc_id(&mut self) -> JobId {
        JobId(self.window.next_key())
    }

    /// Inserts a new job.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not the most recently allocated id: jobs enter
    /// the table in allocation order.
    pub fn insert(&mut self, id: JobId, state: JobState) {
        let key = self.window.insert(state);
        assert_eq!(key, id.0, "jobs must be inserted in allocation order");
        self.submitted += 1;
    }

    /// The job with this id.
    ///
    /// # Panics
    ///
    /// Panics if the job is not in flight.
    pub fn get_mut(&mut self, id: JobId) -> &mut JobState {
        self.window.get_mut(id.0).expect("job not in flight")
    }

    /// Shared access.
    ///
    /// # Panics
    ///
    /// Panics if the job is not in flight.
    pub fn get(&self, id: JobId) -> &JobState {
        self.window.get(id.0).expect("job not in flight")
    }

    /// Removes a completed job, returning its state.
    pub fn remove_completed(&mut self, id: JobId) -> JobState {
        let state = self.window.remove(id.0).expect("job not in flight");
        self.completed += 1;
        state
    }

    /// Jobs currently in flight.
    pub fn in_flight(&self) -> usize {
        self.window.len()
    }

    /// Jobs ever submitted.
    pub fn submitted(&self) -> u64 {
        self.submitted
    }

    /// Jobs completed.
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Tasks pending across all in-flight jobs (running + queued + waiting
    /// transfers) — the global load signal.
    pub fn total_unfinished_tasks(&self) -> u64 {
        self.window.iter().map(|(_, j)| j.unfinished as u64).sum()
    }
}

/// A helper for mapping `(server, task)` completion events back to jobs:
/// the `TaskId` carries the `JobId`, so the table is keyed directly.
pub fn task_index(id: TaskId) -> u32 {
    id.index
}

#[cfg(test)]
mod tests {
    use super::*;
    use holdcsim_des::time::SimDuration;
    use holdcsim_workload::dag::TaskSpec;

    fn chain3() -> JobDag {
        JobDag::builder()
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .edge(0, 1, 100)
            .edge(1, 2, 100)
            .build()
            .unwrap()
    }

    #[test]
    fn readiness_flows_down_the_chain() {
        let mut js = JobState::new(chain3(), SimTime::ZERO);
        assert_eq!(js.initial_ready(), vec![0]);
        assert_eq!(js.finish_task(0), vec![1]);
        assert!(!js.is_complete());
        assert_eq!(js.finish_task(1), vec![2]);
        assert_eq!(js.finish_task(2), Vec::<u32>::new());
        assert!(js.is_complete());
    }

    #[test]
    fn fan_in_waits_for_all_preds() {
        let dag = JobDag::builder()
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .task(TaskSpec::compute(SimDuration::from_millis(1)))
            .edge(0, 2, 0)
            .edge(1, 2, 0)
            .build()
            .unwrap();
        let mut js = JobState::new(dag, SimTime::ZERO);
        assert_eq!(js.initial_ready(), vec![0, 1]);
        assert_eq!(js.finish_task(0), Vec::<u32>::new());
        assert_eq!(js.finish_task(1), vec![2]);
    }

    #[test]
    fn transfer_barrier() {
        let mut js = JobState::new(chain3(), SimTime::ZERO);
        js.add_transfers(1, 2);
        assert!(!js.transfer_done(1));
        assert_eq!(js.pending_transfers(1), 1);
        assert!(js.transfer_done(1));
    }

    #[test]
    fn assignment_bookkeeping() {
        let mut js = JobState::new(chain3(), SimTime::ZERO);
        assert_eq!(js.assignment(0), None);
        js.assign(0, ServerId(3));
        assert_eq!(js.assignment(0), Some(ServerId(3)));
    }

    #[test]
    fn straggler_job_does_not_pin_the_window() {
        // One never-finishing job at the window front while thousands of
        // later jobs complete: the window must compact the straggler into
        // the sparse overflow instead of growing per job submitted.
        let mut t = JobTable::new();
        let straggler = t.alloc_id();
        t.insert(straggler, JobState::new(chain3(), SimTime::ZERO));
        for _ in 0..20_000 {
            let id = t.alloc_id();
            t.insert(id, JobState::new(chain3(), SimTime::ZERO));
            let js = t.get_mut(id);
            js.finish_task(0);
            js.finish_task(1);
            js.finish_task(2);
            t.remove_completed(id);
        }
        assert_eq!(t.in_flight(), 1);
        assert!(
            t.window.dense_len() < 2 * holdcsim_des::slot_window::COMPACT_SLACK + 16,
            "window should compact behind the straggler, got {} slots",
            t.window.dense_len()
        );
        // The compacted job is still fully addressable.
        assert_eq!(t.get(straggler).dag.len(), 3);
        assert_eq!(t.total_unfinished_tasks(), 3);
        let js = t.get_mut(straggler);
        js.finish_task(0);
        js.finish_task(1);
        js.finish_task(2);
        assert!(t.get(straggler).is_complete());
        t.remove_completed(straggler);
        assert_eq!(t.in_flight(), 0);
        assert_eq!(t.window.overflow_len(), 0, "overflow drained");
    }

    #[test]
    fn table_counts() {
        let mut t = JobTable::new();
        let id = t.alloc_id();
        assert_eq!(id, JobId(0));
        t.insert(id, JobState::new(chain3(), SimTime::ZERO));
        assert_eq!(t.in_flight(), 1);
        assert_eq!(t.submitted(), 1);
        assert_eq!(t.total_unfinished_tasks(), 3);
        let js = t.get_mut(id);
        js.finish_task(0);
        js.finish_task(1);
        js.finish_task(2);
        assert!(t.get(id).is_complete());
        t.remove_completed(id);
        assert_eq!(t.completed(), 1);
        assert_eq!(t.in_flight(), 0);
    }
}
