//! Quickstart: simulate a small web-search server farm and print the
//! report.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use holdcsim::prelude::*;

fn main() {
    // 10 four-core Xeon-class servers at 30 % utilization serving
    // web-search requests (exponential, 5 ms mean) for 60 simulated
    // seconds.
    let cfg = SimConfig::server_farm(
        10,
        4,
        0.30,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(60),
    );

    let report = Simulation::new(cfg).run();

    println!("== HolDCSim-RS quickstart ==");
    print!("{}", report.summary());
    println!(
        "mean farm power: {:.1} W | mean utilization: {:.1} % | events: {}",
        report.mean_server_power_w(),
        report.mean_utilization() * 100.0,
        report.events_processed
    );
    println!("machine-readable: {}", report.to_json());
}
