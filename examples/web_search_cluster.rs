//! A latency-critical web-search cluster with power management: compares
//! Active-Idle, a single delay timer, and the WASP-style two-pool adaptive
//! scheduler on the same workload — the §IV-B/C story in one binary.
//!
//! ```sh
//! cargo run --release --example web_search_cluster
//! ```

use holdcsim::prelude::*;

fn run(name: &str, cfg: SimConfig) {
    let report = Simulation::new(cfg).run();
    println!(
        "{name:<18} energy {:>8.1} kJ | p95 {:>7.2} ms | p99 {:>7.2} ms | jobs {}",
        report.server_energy_j() / 1e3,
        report.latency.p95 * 1e3,
        report.latency.p99 * 1e3,
        report.jobs_completed
    );
}

fn main() {
    let servers = 20;
    let cores = 4;
    let rho = 0.2;
    let horizon = SimDuration::from_secs(120);
    let base = || {
        SimConfig::server_farm(
            servers,
            cores,
            rho,
            WorkloadPreset::WebSearch.template(),
            horizon,
        )
        .with_policy(PolicyKind::PackFirst)
    };

    println!("== web-search cluster: {servers} x {cores}-core @ rho={rho}, {horizon} ==",);

    // Baseline: servers never sleep.
    run(
        "active-idle",
        base().with_sleep_policy(SleepPolicy::active_idle()),
    );

    // Single delay timer: idle 400 ms, then suspend to RAM.
    run(
        "delay-timer 0.4s",
        base().with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_millis(400))),
    );

    // WASP-style two pools: a right-sized active pool in shallow sleep,
    // the rest descending to system sleep.
    let mut adaptive = base();
    adaptive.controller = Some(ControllerConfig::Pools {
        t_wakeup: 1.5 * cores as f64,
        t_sleep: 0.4 * cores as f64,
        sleep_pool_tau: SimDuration::from_secs(1),
        initial_active: ((rho * servers as f64).ceil() as usize).max(1),
    });
    adaptive.controller_period = SimDuration::from_millis(50);
    run("workload-adaptive", adaptive);
}
