//! Bursty workloads: the same mean load as a Poisson stream but modulated
//! by a 2-state MMPP, showing how burstiness inflates tail latency and
//! defeats naive delay timers (§III-D and the paper's footnote 1).
//!
//! ```sh
//! cargo run --release --example bursty_mmpp
//! ```

use holdcsim::prelude::*;

fn run(name: &str, arrivals: ArrivalConfig) {
    let mut cfg = SimConfig::server_farm(
        10,
        4,
        0.3,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(60),
    )
    .with_policy(PolicyKind::PackFirst)
    .with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_millis(400)));
    cfg.arrivals = arrivals;
    let report = Simulation::new(cfg).run();
    println!(
        "{name:<22} p50 {:>6.2} ms | p95 {:>8.2} ms | p99 {:>8.2} ms | energy {:>7.1} kJ",
        report.latency.p50 * 1e3,
        report.latency.p95 * 1e3,
        report.latency.p99 * 1e3,
        report.server_energy_j() / 1e3
    );
}

fn main() {
    // rho = 0.3 on 10 x 4 cores with 5 ms mean service: lambda = 2400/s.
    let rate = 0.3 * 10.0 * 4.0 / 0.005;
    println!("== Poisson vs MMPP at identical mean rate ({rate:.0} jobs/s) ==");
    run("poisson", ArrivalConfig::Poisson { rate });
    for ratio in [5.0, 20.0] {
        run(
            &format!("mmpp2 ratio={ratio}"),
            ArrivalConfig::Mmpp2 {
                base_rate: rate,
                burst_ratio: ratio,
                bursty_fraction: 0.1,
                mean_bursty_dwell: 0.5,
            },
        );
    }
}
