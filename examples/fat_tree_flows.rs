//! Joint server + network simulation: two-tier jobs exchanging data over a
//! fat-tree (k=4), comparing load-balanced vs network-aware placement —
//! the §IV-D co-optimization in miniature.
//!
//! ```sh
//! cargo run --release --example fat_tree_flows
//! ```

use holdcsim::prelude::*;

fn main() {
    let horizon = SimDuration::from_secs(60);
    // Two-tier web requests: app task, then a DB task fed by a 10 MB flow
    // (~8 ms on 10 GbE, a visible but non-saturating latency component).
    let template = JobTemplate::two_tier(
        ServiceDist::Exponential {
            mean: SimDuration::from_millis(200),
        },
        ServiceDist::Exponential {
            mean: SimDuration::from_millis(300),
        },
        10_000_000,
    );

    println!("== fat-tree(k=4), 16 servers, two-tier jobs with 10 MB flows ==");
    for policy in [PolicyKind::LeastLoaded, PolicyKind::NetworkAware] {
        let mut cfg = SimConfig::server_farm(16, 4, 0.3, template.clone(), horizon)
            .with_policy(policy)
            .with_sleep_policy(SleepPolicy::shallow_then_deep(SimDuration::from_secs(2)));
        // Two interleaved server tiers (app/db) so every request crosses
        // the network; placement decides how many switches it touches.
        cfg.server_classes = (0..16).map(|i| (i % 2) as u32).collect();
        let mut net = NetworkConfig::fat_tree(4);
        net.link = holdcsim_network::topologies::LinkSpec::ten_gigabit();
        cfg.network = Some(net);
        let report = Simulation::new(cfg).run();
        let net = report.network.as_ref().expect("network simulated");
        println!(
            "{:?}: servers {:.1} W, switches {:.1} W, flows {}, p95 {:.1} ms, jobs {}",
            policy,
            report.mean_server_power_w(),
            net.mean_switch_power_w,
            net.flows,
            report.latency.p95 * 1e3,
            report.jobs_completed
        );
    }
}
