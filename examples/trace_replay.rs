//! Trace-based simulation end to end: generate a synthetic Wikipedia-like
//! trace, serialize it to the one-timestamp-per-line text format, parse it
//! back (as you would a real trace file), and replay it through the farm.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use holdcsim::config::ArrivalConfig;
use holdcsim::prelude::*;
use holdcsim_des::rng::SimRng;
use holdcsim_workload::trace::{from_text, to_text, SyntheticTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let horizon = SimDuration::from_secs(120);
    let mut rng = SimRng::seed_from(2026);

    // 1. Generate a diurnal trace at ~800 jobs/s mean.
    let trace = SyntheticTrace::wikipedia_like(horizon, 800.0, 0.6, horizon / 2, &mut rng);
    println!("generated {} arrivals over {horizon}", trace.len());

    // 2. Round-trip through the text format (swap in any real trace here).
    let text = to_text(&trace);
    let parsed = from_text(&text)?;
    assert_eq!(parsed, trace);
    println!("text round-trip: {} bytes", text.len());

    // 3. Replay through a provisioned farm.
    let mut cfg = SimConfig::server_farm(
        20,
        4,
        0.3, // nominal; the trace decides the real load
        WorkloadPreset::Provisioning.template(),
        horizon,
    )
    .with_policy(PolicyKind::PackFirst)
    .with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_secs(1)));
    cfg.arrivals = ArrivalConfig::Trace(parsed);
    cfg.controller = Some(ControllerConfig::Provisioning {
        min_load: 1.0,
        max_load: 3.0,
    });

    let report = Simulation::new(cfg).run();
    print!("{}", report.summary());
    let min = report
        .series
        .active_servers
        .iter()
        .copied()
        .fold(f64::MAX, f64::min);
    let max = report
        .series
        .active_servers
        .iter()
        .copied()
        .fold(0.0, f64::max);
    println!("active servers tracked the diurnal load: {min:.0}..{max:.0} of 20");
    Ok(())
}
