//! Multi-datacenter federation: three sites behind a 10 Gb/s / 15 ms WAN,
//! a hot site serving most of the traffic, and the three geo dispatch
//! policies compared — how much load leaves the hot site, what the WAN
//! legs cost in job latency, and what the WAN itself consumes.
//!
//! ```sh
//! cargo run --release --example multi_datacenter
//! ```

use holdcsim::config::{ClusterConfig, NetworkConfig, SimConfig, WanConfig};
use holdcsim::prelude::*;
use holdcsim_cluster::Federation;

fn main() {
    let horizon = SimDuration::from_secs(20);
    // Each site is a complete fabric: 8 four-core servers on a k=4 fat
    // tree with flow-model transfers, driven at rho = 0.55 aggregate.
    let mut base =
        SimConfig::server_farm(8, 4, 0.55, WorkloadPreset::WebSearch.template(), horizon);
    base.network = Some(NetworkConfig::fat_tree(4));
    let wan = WanConfig::full_mesh(3, 10_000_000_000, SimDuration::from_millis(15));

    println!("== 3-site federation, hot site 0 (4:1:1 affinity), 10 Gb/s / 15 ms WAN ==");
    for geo in [
        GeoPolicy::SiteLocalFirst { spill_load: 1.0 },
        GeoPolicy::LoadBalanced,
        GeoPolicy::LatencyAware {
            latency_weight: 20.0,
        },
    ] {
        let mut cc = ClusterConfig::uniform(base.clone(), 3, wan.clone()).with_geo(geo);
        cc.sites[0].affinity = Some(4.0);
        cc.job_bytes = 512 * 1024;
        let r = Federation::new(&cc).run();
        println!("-- {} --", geo.name());
        print!("{}", r.summary());
    }
}
