//! Fault storm over a 3-site federation: a crash wave rolls through the
//! hot site while the WAN partitions it from the rest of the fleet, and
//! the three geo dispatch policies are compared on availability, retry
//! traffic, and clean-vs-fault-affected tail latency.
//!
//! ```sh
//! cargo run --release --example fault_storm
//! ```

use holdcsim::config::{ClusterConfig, NetworkConfig, SimConfig, WanConfig};
use holdcsim::prelude::*;
use holdcsim_cluster::Federation;
use holdcsim_faults::FaultPlan;

fn main() {
    let horizon = SimDuration::from_secs(20);
    // Each site: 8 four-core servers on a k=4 fat tree with flow-model
    // transfers; site 0 serves a 4:1:1 share of the aggregate traffic.
    let mut base =
        SimConfig::server_farm(8, 4, 0.55, WorkloadPreset::WebSearch.template(), horizon);
    base.network = Some(NetworkConfig::fat_tree(4));
    let wan = WanConfig::full_mesh(3, 10_000_000_000, SimDuration::from_millis(15));

    // The storm: a crash wave through the hot site (servers 0-3 die in
    // 500 ms steps, each down for 3 s), a straggler at site 1, and a WAN
    // partition — full_mesh(3) numbers its links (0-1), (0-2), (1-2), so
    // dropping links 0 and 1 isolates site 0 from t=8s to t=12s.
    let plan = FaultPlan::parse(
        "site0.crash@4s:0;   site0.recover@7s:0; \
         site0.crash@4500ms:1; site0.recover@7500ms:1; \
         site0.crash@5s:2;   site0.recover@8s:2; \
         site0.crash@5500ms:3; site0.recover@8500ms:3; \
         site1.straggle@6s:0,0.25,4s; \
         wan-down@8s:0; wan-down@8s:1; wan-up@12s:0; wan-up@12s:1; \
         retry:max=3,backoff=20ms,mult=2",
    )
    .expect("storm plan parses");

    println!("== 3-site fault storm: crash wave at hot site 0 + 4 s WAN partition ==");
    for geo in [
        GeoPolicy::SiteLocalFirst { spill_load: 1.0 },
        GeoPolicy::LoadBalanced,
        GeoPolicy::LatencyAware {
            latency_weight: 20.0,
        },
    ] {
        let mut cc = ClusterConfig::uniform(base.clone(), 3, wan.clone()).with_geo(geo);
        cc.sites[0].affinity = Some(4.0);
        cc.job_bytes = 512 * 1024;
        cc.faults = Some(plan.clone());
        let r = Federation::new(&cc).run();
        let res = r.resilience.expect("fault run reports resilience");
        println!("-- {} --", geo.name());
        println!(
            "   availability {:.4}% | {:.1} server-s down | wan down {:.1} s",
            res.availability * 100.0,
            res.server_downtime_s,
            res.wan_link_downtime_s,
        );
        println!(
            "   jobs: {} done, {} retried ({} retries), {} abandoned, {} unfinished",
            r.jobs_completed(),
            res.jobs_retried,
            res.retries,
            res.jobs_abandoned,
            res.jobs_unfinished,
        );
        println!(
            "   wan: {} forwarded, {} transfers restarted, {} parked at the partition",
            r.jobs_forwarded(),
            res.wan_restarts,
            res.wan_parked,
        );
        // Clean vs fault-affected tails come from the per-site reports.
        for (i, site) in r.sites.iter().enumerate() {
            if let Some(sr) = &site.resilience {
                println!(
                    "   site {i}: clean p99 {:.1} ms ({} jobs) vs affected p99 {:.1} ms ({} jobs)",
                    sr.clean.p99 * 1e3,
                    sr.clean.count,
                    sr.affected.p99 * 1e3,
                    sr.affected.count,
                );
            }
        }
    }
}
