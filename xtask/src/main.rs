//! Workspace task runner: the entry points CI uses to gate every PR.
//!
//! ```text
//! cargo xtask analyze [--deny]   # static determinism lints (holdcsim-lint)
//! cargo xtask miri [--require]   # Miri lane: kernel structures under the interpreter
//! cargo xtask tsan [--require]   # ThreadSanitizer lane: scoped-thread executors
//! cargo xtask determinism [--release]
//!                                # dynamic smoke: same seed twice ⇒ identical fingerprints
//! cargo xtask gate               # analyze --deny + determinism (the local pre-push check)
//! ```
//!
//! The sanitizer lanes need nightly components (`miri`, `rust-src`) that
//! are not always installed — an offline checkout cannot fetch them — so
//! by default a missing component **skips** the lane with a loud message
//! and exit 0. CI passes `--require`, which turns a missing component
//! into a failure; the workflow installs the components first.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let root = workspace_root();
    match args.first().map(|s| s.as_str()) {
        Some("analyze") => analyze(&root, args.iter().any(|a| a == "--deny")),
        Some("miri") => miri(&root, args.iter().any(|a| a == "--require")),
        Some("tsan") => tsan(&root, args.iter().any(|a| a == "--require")),
        Some("determinism") => determinism(&root, args.iter().any(|a| a == "--release")),
        Some("gate") => {
            let a = analyze(&root, true);
            if a != ExitCode::SUCCESS {
                return a;
            }
            determinism(&root, false)
        }
        other => {
            eprintln!(
                "usage: cargo xtask <analyze [--deny] | miri [--require] | tsan [--require] | \
                 determinism [--release] | gate>"
            );
            if other.is_none() {
                ExitCode::from(2)
            } else {
                eprintln!("unknown task `{}`", other.unwrap_or(""));
                ExitCode::from(2)
            }
        }
    }
}

/// The workspace root is the parent of this crate's manifest dir.
fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_else(|| PathBuf::from("."))
}

/// `cargo xtask analyze [--deny]`: run the determinism lints in-process.
fn analyze(root: &Path, deny: bool) -> ExitCode {
    let outcome = match holdcsim_analysis::gate(root, &root.join("analysis.toml")) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("xtask analyze: io error: {e}");
            return ExitCode::from(2);
        }
    };
    print!("{}", outcome.render());
    if outcome.config_error.is_some() || !outcome.stale.is_empty() {
        ExitCode::from(2)
    } else if deny && !outcome.unsuppressed.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

/// True when `component` is installed for the nightly toolchain.
fn nightly_has(component: &str) -> bool {
    let out = Command::new("rustup")
        .args(["component", "list", "--toolchain", "nightly"])
        .output();
    match out {
        Ok(o) => String::from_utf8_lossy(&o.stdout)
            .lines()
            .any(|l| l.starts_with(component) && l.contains("(installed)")),
        Err(_) => false,
    }
}

fn skip_or_fail(lane: &str, missing: &str, install: &str, require: bool) -> ExitCode {
    if require {
        eprintln!("xtask {lane}: FAILED — {missing} is not installed (run `{install}`)");
        ExitCode::from(1)
    } else {
        println!(
            "xtask {lane}: SKIPPED — {missing} is not installed; run `{install}` \
             (CI runs this lane with --require)"
        );
        ExitCode::SUCCESS
    }
}

/// `cargo xtask miri`: run the unsafe-adjacent kernel structures
/// (`SlotWindow`, `LazyHeap`, `EventQueue`) under the Miri interpreter.
/// The randomized model tests shrink themselves under `cfg(miri)` so the
/// lane finishes in minutes, not hours.
fn miri(root: &Path, require: bool) -> ExitCode {
    if !nightly_has("miri") {
        return skip_or_fail(
            "miri",
            "the nightly `miri` component",
            "rustup component add miri --toolchain nightly",
            require,
        );
    }
    let status = Command::new("cargo")
        .current_dir(root)
        .args([
            "+nightly",
            "miri",
            "test",
            "-p",
            "holdcsim-des",
            "--lib",
            "slot_window",
            "lazy_heap",
            "queue",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {
            println!("xtask miri: PASS (SlotWindow / LazyHeap / EventQueue under Miri)");
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("xtask miri: failed to spawn cargo: {e}");
            ExitCode::from(1)
        }
    }
}

/// `cargo xtask tsan`: build std + the scoped-thread tests with
/// ThreadSanitizer and run the worker-count determinism suites (the
/// harness executor, the federation grid runner, and the federation's
/// conservative-window pool — `parallel_windows_bitwise_identical_to_serial`
/// matches the filter — are the places real threads touch shared state).
fn tsan(root: &Path, require: bool) -> ExitCode {
    if !nightly_has("rust-src") {
        return skip_or_fail(
            "tsan",
            "the nightly `rust-src` component (TSan needs -Zbuild-std for an instrumented std)",
            "rustup component add rust-src --toolchain nightly",
            require,
        );
    }
    let host = host_triple();
    let status = Command::new("cargo")
        .current_dir(root)
        .env("RUSTFLAGS", "-Zsanitizer=thread")
        .env("RUSTDOCFLAGS", "-Zsanitizer=thread")
        .args([
            "+nightly",
            "test",
            "-Zbuild-std",
            "--target",
            &host,
            "-p",
            "holdcsim-harness",
            "-p",
            "holdcsim-cluster",
            "bitwise_identical",
        ])
        .status();
    match status {
        Ok(s) if s.success() => {
            println!(
                "xtask tsan: PASS (harness executor + federation grid + window pool under TSan)"
            );
            ExitCode::SUCCESS
        }
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("xtask tsan: failed to spawn cargo: {e}");
            ExitCode::from(1)
        }
    }
}

fn host_triple() -> String {
    let out = Command::new("rustc").args(["-vV"]).output();
    if let Ok(o) = out {
        for line in String::from_utf8_lossy(&o.stdout).lines() {
            if let Some(h) = line.strip_prefix("host: ") {
                return h.trim().to_string();
            }
        }
    }
    "x86_64-unknown-linux-gnu".to_string()
}

/// `cargo xtask determinism`: the dynamic closing of the loop — run the
/// same seed twice through `holdcsim run --fingerprint`, and twice
/// through the federation's 4-worker conservative-window arm
/// (`holdcsim federate --fed-workers 4`), with the binary the static
/// gate just blessed, and require `trace-diff` to report identical
/// (per site, for the federated pair). A hazard the lints missed that
/// reaches the event stream shows up here as a bisected divergence.
fn determinism(root: &Path, release: bool) -> ExitCode {
    let mut build = vec!["build", "--bin", "holdcsim"];
    if release {
        build.push("--release");
    }
    let status = Command::new("cargo")
        .current_dir(root)
        .args(&build)
        .status();
    if !matches!(status, Ok(s) if s.success()) {
        eprintln!("xtask determinism: build failed");
        return ExitCode::from(1);
    }
    let bin = root
        .join("target")
        .join(if release { "release" } else { "debug" })
        .join("holdcsim");
    let tmp = std::env::temp_dir().join(format!("holdcsim-xtask-{}", std::process::id()));
    if let Err(e) = std::fs::create_dir_all(&tmp) {
        eprintln!("xtask determinism: cannot create {}: {e}", tmp.display());
        return ExitCode::from(1);
    }
    let diff_identical = |a: &Path, b: &Path| -> Result<(), String> {
        let out = Command::new(&bin)
            .current_dir(root)
            .arg("trace-diff")
            .arg(a)
            .arg(b)
            .output()
            .map_err(|e| format!("failed to spawn trace-diff: {e}"))?;
        let text = String::from_utf8_lossy(&out.stdout);
        if out.status.success() && text.starts_with("identical") {
            Ok(())
        } else {
            Err(format!("double-run fingerprints differ:\n{text}"))
        }
    };
    let check = || -> Result<(), String> {
        // Arm 1: a standalone farm, same seed twice.
        let fp_a = tmp.join("fp_a.json");
        let fp_b = tmp.join("fp_b.json");
        for fp in [&fp_a, &fp_b] {
            let status = Command::new(&bin)
                .current_dir(root)
                .args([
                    "run",
                    "--servers",
                    "8",
                    "--duration",
                    "2",
                    "--seed",
                    "1234",
                    "--fingerprint",
                ])
                .arg(fp)
                .stdout(std::process::Stdio::null())
                .status();
            if !matches!(status, Ok(s) if s.success()) {
                return Err("`holdcsim run --fingerprint` failed".into());
            }
        }
        diff_identical(&fp_a, &fp_b)?;
        // Arm 2: a forwarding federation on the 4-worker window pool,
        // same seed twice; per-site fingerprints are written as
        // fed_X.site0.json / fed_X.site1.json.
        for name in ["fed_a.json", "fed_b.json"] {
            let status = Command::new(&bin)
                .current_dir(root)
                .args([
                    "federate",
                    "--sites",
                    "2",
                    "--servers",
                    "4",
                    "--duration",
                    "1",
                    "--seed",
                    "77",
                    "--geo",
                    "load-balanced",
                    "--affinity",
                    "2,1",
                    "--fed-workers",
                    "4",
                    "--fingerprint",
                ])
                .arg(tmp.join(name))
                .stdout(std::process::Stdio::null())
                .status();
            if !matches!(status, Ok(s) if s.success()) {
                return Err("`holdcsim federate --fed-workers 4 --fingerprint` failed".into());
            }
        }
        for site in ["site0", "site1"] {
            diff_identical(
                &tmp.join(format!("fed_a.{site}.json")),
                &tmp.join(format!("fed_b.{site}.json")),
            )
            .map_err(|e| format!("federate {site}: {e}"))?;
        }
        Ok(())
    };
    let outcome = check();
    let _ = std::fs::remove_dir_all(&tmp);
    match outcome {
        Ok(()) => {
            println!(
                "xtask determinism: PASS (same seed twice ⇒ trace-diff identical, \
                 run + federate --fed-workers 4)"
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("xtask determinism: FAILED — {e}");
            ExitCode::from(1)
        }
    }
}
