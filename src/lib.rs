//! Umbrella crate for the HolDCSim-RS workspace: hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`). The library surface simply re-exports the stack.

pub use holdcsim;
pub use holdcsim_cluster as cluster;
pub use holdcsim_des as des;
pub use holdcsim_faults as faults;
pub use holdcsim_network as network;
pub use holdcsim_obs as obs;
pub use holdcsim_power as power;
pub use holdcsim_sched as sched;
pub use holdcsim_server as server;
pub use holdcsim_workload as workload;
