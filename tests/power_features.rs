//! Integration tests for the Table I power knobs: DVFS governor,
//! heterogeneous cores, ALR vs LPI, and the pool controller under bursts.

use holdcsim::config::{ArrivalConfig, ControllerConfig, DvfsConfig, NetworkConfig};
use holdcsim::prelude::*;

fn base(rho: f64, secs: u64) -> SimConfig {
    SimConfig::server_farm(
        4,
        4,
        rho,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(secs),
    )
}

#[test]
fn dvfs_governor_cuts_cpu_energy_at_low_load() {
    let nominal = Simulation::new(base(0.15, 60)).run();
    let mut governed_cfg = base(0.15, 60);
    governed_cfg.dvfs = Some(DvfsConfig::ondemand());
    let governed = Simulation::new(governed_cfg).run();
    assert!(
        governed.cpu_energy_j() < nominal.cpu_energy_j() * 0.95,
        "governed {} vs nominal {}",
        governed.cpu_energy_j(),
        nominal.cpu_energy_j()
    );
    // Slower cores mean longer service: latency rises.
    assert!(governed.latency.mean > nominal.latency.mean);
    // But everything still completes.
    assert!(governed.jobs_completed as f64 > 0.99 * nominal.jobs_completed as f64);
}

#[test]
fn dvfs_governor_speeds_up_under_load() {
    // At rho=0.9 the governor should sit at (or near) the top P-state, so
    // latency stays close to the nominal run.
    let nominal = Simulation::new(base(0.9, 30)).run();
    let mut governed_cfg = base(0.9, 30);
    governed_cfg.dvfs = Some(DvfsConfig::ondemand());
    let governed = Simulation::new(governed_cfg).run();
    assert!(
        governed.latency.p95 < nominal.latency.p95 * 2.0,
        "governed p95 {} vs nominal {}",
        governed.latency.p95,
        nominal.latency.p95
    );
}

#[test]
fn heterogeneous_farm_is_slower_when_cores_shrink() {
    // 4 full-speed cores vs 1 big + 3 half-speed cores: same farm, less
    // capacity, higher latency at the same arrival rate.
    let homo = Simulation::new(base(0.5, 30)).run();
    let mut het_cfg = base(0.5, 30);
    het_cfg.core_speeds = vec![1.0, 0.5, 0.5, 0.5];
    let het = Simulation::new(het_cfg).run();
    assert!(
        het.latency.mean > homo.latency.mean,
        "het {} vs homo {}",
        het.latency.mean,
        homo.latency.mean
    );
    assert_eq!(
        het.jobs_submitted, homo.jobs_submitted,
        "same seed, same arrivals"
    );
}

#[test]
fn alr_saves_less_than_lpi_but_more_than_nothing() {
    let mk = |lpi: Option<SimDuration>, alr: bool| {
        let mut cfg = base(0.05, 30);
        cfg.server_count = 16;
        let mut net = NetworkConfig::fat_tree(4);
        net.lpi_hold = lpi;
        net.use_alr = alr;
        cfg.network = Some(net);
        Simulation::new(cfg)
            .run()
            .network
            .expect("net")
            .switch_energy_j
    };
    let none = mk(None, false);
    let alr = mk(Some(SimDuration::from_millis(10)), true);
    let lpi = mk(Some(SimDuration::from_millis(10)), false);
    assert!(lpi < alr, "LPI {lpi} should beat ALR {alr}");
    assert!(alr < none, "ALR {alr} should beat always-on {none}");
}

#[test]
fn pools_react_to_bursty_load() {
    let mut cfg = base(0.3, 60);
    cfg.server_count = 8;
    cfg.arrivals = ArrivalConfig::Mmpp2 {
        base_rate: 0.3 * 8.0 * 4.0 / 0.005,
        burst_ratio: 6.0,
        bursty_fraction: 0.2,
        mean_bursty_dwell: 2.0,
    };
    cfg.policy = PolicyKind::PackFirst;
    cfg.controller = Some(ControllerConfig::Pools {
        t_wakeup: 6.0,
        t_sleep: 1.5,
        sleep_pool_tau: SimDuration::from_secs(1),
        initial_active: 3,
    });
    cfg.controller_period = SimDuration::from_millis(50);
    let report = Simulation::new(cfg).run();
    // The farm survives the bursts and some servers slept at some point.
    assert!(report.jobs_completed > 10_000);
    let deep: u64 = report.servers.iter().map(|s| s.sleep_counts.0).sum();
    let resumes: u64 = report.servers.iter().map(|s| s.sleep_counts.1).sum();
    assert!(deep > 0, "no deep sleeps under pools");
    assert!(resumes > 0, "no promotions woke servers");
}

#[test]
fn parked_servers_keep_their_own_timer() {
    // Provisioning parks servers; their configured τ (not an override)
    // decides when they suspend.
    let mut cfg = base(0.1, 40);
    cfg.server_count = 8;
    cfg.policy = PolicyKind::PackFirst;
    cfg.sleep_policies = vec![SleepPolicy::delay_timer(SimDuration::from_secs(2))];
    cfg.controller = Some(ControllerConfig::Provisioning {
        min_load: 1.0,
        max_load: 3.0,
    });
    let report = Simulation::new(cfg).run();
    let deep: u64 = report.servers.iter().map(|s| s.sleep_counts.0).sum();
    assert!(deep > 0, "parked servers never suspended");
    // Servers that slept spent >= 2 s idle first (their τ), so idle
    // residency is nonzero on any sleeping server.
    let slept = report
        .servers
        .iter()
        .find(|s| s.sleep_counts.0 > 0)
        .expect("some slept");
    assert!(slept.residency.2 > 0.0, "no idle residency before sleep");
}
