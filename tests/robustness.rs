//! Edge cases and failure injection across the stack: packet loss and
//! retransmission, class-constrained placement, degenerate horizons,
//! overload, and odd topologies.

use holdcsim::config::{ArrivalConfig, CommModel, ControllerConfig, NetworkConfig, TopologySpec};
use holdcsim::prelude::*;
use holdcsim_network::topologies::LinkSpec;
use holdcsim_workload::dag::TaskSpec;

#[test]
fn packet_drops_are_retried_until_jobs_complete() {
    // A buffer barely above one MTU forces tail-drops under fan-in; the
    // retry path must still deliver every transfer.
    let template = JobTemplate::two_tier(
        ServiceDist::Deterministic(SimDuration::from_millis(2)),
        ServiceDist::Deterministic(SimDuration::from_millis(2)),
        60_000, // 40 packets per edge
    );
    let mut cfg = SimConfig::server_farm(8, 2, 0.2, template, SimDuration::from_secs(30));
    cfg.arrivals = ArrivalConfig::Trace((0..100).map(SimTime::from_millis).collect());
    let mut net = NetworkConfig::validation_star();
    net.comm = CommModel::Packet {
        mtu: 1_500,
        buffer_bytes: 4_000,
    };
    net.link = LinkSpec::gigabit();
    cfg.network = Some(net);
    cfg.server_classes = (0..8).map(|i| (i % 2) as u32).collect();
    let report = Simulation::new(cfg).run();
    let net = report.network.as_ref().expect("network");
    assert!(net.packets_dropped > 0, "expected drops with a 4 kB buffer");
    assert_eq!(
        report.jobs_completed, 100,
        "retries must recover all transfers"
    );
}

#[test]
fn class_constraints_are_respected_with_global_queue() {
    // Two classes, one server each; class-1 tasks must wait for server 1
    // even while server 0 idles.
    let template = JobTemplate::two_tier(
        ServiceDist::Deterministic(SimDuration::from_millis(1)),
        ServiceDist::Deterministic(SimDuration::from_millis(50)),
        0,
    );
    let mut cfg = SimConfig::server_farm(2, 1, 0.2, template, SimDuration::from_secs(20));
    cfg.use_global_queue = true;
    cfg.server_classes = vec![0, 1];
    cfg.arrivals = ArrivalConfig::Trace((0..40).map(|i| SimTime::from_millis(i * 2)).collect());
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_completed, 40);
    // All the 50 ms db work ran on server 1.
    assert!(report.servers[1].utilization > report.servers[0].utilization * 5.0);
}

#[test]
fn empty_horizon_produces_sane_report() {
    let mut cfg = SimConfig::server_farm(
        2,
        2,
        0.3,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_millis(10),
    );
    // First arrival after the horizon.
    cfg.arrivals = ArrivalConfig::Trace(vec![SimTime::from_secs(5)]);
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_submitted, 0);
    assert_eq!(report.jobs_completed, 0);
    assert_eq!(report.latency.count, 0);
    assert!(report.server_energy_j() > 0.0, "idle energy still accrues");
}

#[test]
fn overloaded_farm_stays_stable_and_reports_backlog() {
    // rho = 1.3: the queue grows, completed < submitted, but the simulator
    // terminates and reports cleanly.
    let cfg = SimConfig::server_farm(
        2,
        2,
        1.3,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(10),
    );
    let report = Simulation::new(cfg).run();
    assert!(report.jobs_completed < report.jobs_submitted);
    assert!(report.latency.p99 > report.latency.p50);
    assert!(report.mean_utilization() > 0.95);
}

#[test]
fn pools_with_everything_active_behaves_like_plain_farm() {
    let mut cfg = SimConfig::server_farm(
        4,
        2,
        0.3,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(10),
    );
    cfg.controller = Some(ControllerConfig::Pools {
        t_wakeup: 100.0, // never promote (nothing to promote anyway)
        t_sleep: 0.0001, // demote only when fully idle
        sleep_pool_tau: SimDuration::from_secs(1),
        initial_active: 4,
    });
    let report = Simulation::new(cfg).run();
    assert!(report.jobs_completed > 1_000);
}

#[test]
fn random_dag_jobs_over_camcube_packets() {
    let template = JobTemplate::RandomDag {
        service: ServiceDist::Exponential {
            mean: SimDuration::from_millis(5),
        },
        layers: 3,
        max_width: 3,
        transfer_bytes: 30_000,
    };
    let mut cfg = SimConfig::server_farm(8, 2, 0.2, template, SimDuration::from_secs(30));
    cfg.arrivals = ArrivalConfig::Trace((0..60).map(|i| SimTime::from_millis(i * 20)).collect());
    let mut net = NetworkConfig::validation_star();
    net.topology = TopologySpec::CamCube { x: 2, y: 2, z: 2 };
    net.comm = CommModel::Packet {
        mtu: 1_500,
        buffer_bytes: 1 << 20,
    };
    cfg.network = Some(net);
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_completed, 60);
}

#[test]
fn single_task_with_zero_byte_edges_never_touches_network() {
    // Control-only dependencies (0 bytes) must not create flows.
    let dag_template = {
        // chain with zero-byte edges

        holdcsim_workload::dag::JobDag::builder()
            .task(TaskSpec::compute(SimDuration::from_millis(2)))
            .task(TaskSpec::compute(SimDuration::from_millis(2)))
            .edge(0, 1, 0)
            .build()
            .unwrap()
    };
    // No public "fixed dag" template: emulate via two-tier with 0 bytes.
    drop(dag_template);
    let template = JobTemplate::two_tier(
        ServiceDist::Deterministic(SimDuration::from_millis(2)),
        ServiceDist::Deterministic(SimDuration::from_millis(2)),
        0,
    );
    let mut cfg = SimConfig::server_farm(4, 2, 0.2, template, SimDuration::from_secs(10));
    cfg.arrivals = ArrivalConfig::Trace((0..50).map(|i| SimTime::from_millis(i * 10)).collect());
    cfg.network = Some(NetworkConfig::fat_tree(4));
    cfg.server_count = 16;
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_completed, 50);
    assert_eq!(
        report.network.expect("net").flows,
        0,
        "zero-byte edges made flows"
    );
}

#[test]
fn policies_actually_differ_in_placement() {
    let mk = |policy: PolicyKind| {
        let cfg = SimConfig::server_farm(
            8,
            2,
            0.2,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(10),
        )
        .with_policy(policy);
        Simulation::new(cfg).run()
    };
    let rr = mk(PolicyKind::RoundRobin);
    let pf = mk(PolicyKind::PackFirst);
    // Round-robin spreads utilization evenly; pack-first skews it.
    let spread = |r: &holdcsim::SimReport| {
        let utils: Vec<f64> = r.servers.iter().map(|s| s.utilization).collect();
        let max = utils.iter().copied().fold(0.0, f64::max);
        let min = utils.iter().copied().fold(f64::MAX, f64::min);
        max - min
    };
    assert!(
        spread(&pf) > spread(&rr) * 2.0,
        "pack {} rr {}",
        spread(&pf),
        spread(&rr)
    );
}

#[test]
fn bcube_and_flattened_butterfly_run_flows() {
    for (spec, servers) in [
        (TopologySpec::BCube { n: 2, levels: 2 }, 8),
        (
            TopologySpec::FlattenedButterfly {
                k: 2,
                hosts_per_switch: 2,
            },
            8,
        ),
    ] {
        let template = JobTemplate::two_tier(
            ServiceDist::Deterministic(SimDuration::from_millis(2)),
            ServiceDist::Deterministic(SimDuration::from_millis(2)),
            100_000,
        );
        let mut cfg = SimConfig::server_farm(servers, 2, 0.2, template, SimDuration::from_secs(20));
        cfg.arrivals =
            ArrivalConfig::Trace((0..40).map(|i| SimTime::from_millis(i * 25)).collect());
        cfg.server_classes = (0..servers).map(|i| (i % 2) as u32).collect();
        let mut net = NetworkConfig::validation_star();
        net.topology = spec;
        net.comm = CommModel::Flow;
        cfg.network = Some(net);
        let report = Simulation::new(cfg).run();
        assert_eq!(report.jobs_completed, 40, "{spec:?}");
        assert!(report.network.expect("net").flows > 0, "{spec:?} no flows");
    }
}
