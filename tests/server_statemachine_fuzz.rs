//! Property-style fuzzing of the server state machine: random but
//! causally-valid operation sequences must never panic, and the
//! accounting invariants must hold at every step. Cases are drawn from
//! the kernel's deterministic [`SimRng`] so every failure reproduces
//! from the fixed seed.

use holdcsim_des::rng::SimRng;
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_server::policy::SleepPolicy;
use holdcsim_server::server::{
    Band, Effect, EffectBuf, Server, ServerConfig, ServerId, ServerMode,
};
use holdcsim_server::task::TaskHandle;
use holdcsim_workload::ids::{JobId, TaskId};

/// A pending obligation the driver owes the server.
#[derive(Debug, Clone, Copy)]
enum Due {
    Complete { at: SimTime, core: u32 },
    Timer { at: SimTime, gen: u64 },
    Transition { at: SimTime },
}

impl Due {
    fn at(&self) -> SimTime {
        match *self {
            Due::Complete { at, .. } | Due::Timer { at, .. } | Due::Transition { at } => at,
        }
    }
}

fn policy_from(i: u8) -> SleepPolicy {
    match i % 4 {
        0 => SleepPolicy::active_idle(),
        1 => SleepPolicy::delay_timer(SimDuration::from_millis(50)),
        2 => SleepPolicy::shallow_only(),
        _ => SleepPolicy::shallow_then_deep(SimDuration::from_millis(30)),
    }
}

/// Drive a server with an arbitrary interleaving of submissions and
/// due-event deliveries; assert it never wedges and its books balance.
#[test]
fn random_op_sequences_keep_invariants() {
    let mut rng = SimRng::seed_from(0x5EED_F022);
    for _case in 0..64 {
        let policy_sel = rng.below(4) as u8;
        let cores = 1 + rng.below(3) as u32;
        let ops_n = 1 + rng.below(119) as usize;
        let ops: Vec<(u8, u64)> = (0..ops_n)
            .map(|_| (rng.below(4) as u8, 1 + rng.below(39)))
            .collect();

        let cfg = ServerConfig::new(cores).with_policy(policy_from(policy_sel));
        let mut server = Server::new(SimTime::ZERO, ServerId(0), cfg);
        let mut now = SimTime::ZERO;
        let mut due: Vec<Due> = Vec::new();
        let mut fx = EffectBuf::new();
        let mut job = 0u64;
        let mut submitted = 0u64;

        let absorb = |fx: &[Effect], now: SimTime, due: &mut Vec<Due>| {
            for &e in fx {
                match e {
                    Effect::TaskStarted {
                        core, completes_in, ..
                    } => {
                        due.push(Due::Complete {
                            at: now + completes_in,
                            core,
                        });
                    }
                    Effect::ArmTimer { after, gen } => {
                        due.push(Due::Timer {
                            at: now + after,
                            gen,
                        });
                    }
                    Effect::TransitionDoneIn { after } => {
                        due.push(Due::Transition { at: now + after });
                    }
                }
            }
        };

        for (kind, step_ms) in ops {
            now += SimDuration::from_millis(step_ms);
            if kind == 0 || due.is_empty() {
                // Submit a fresh task.
                job += 1;
                submitted += 1;
                let t = TaskHandle::new(TaskId::new(JobId(job), 0), SimDuration::from_millis(5));
                server.submit(now, t, &mut fx);
                absorb(&fx, now, &mut due);
            } else {
                // Deliver the earliest obligation (events fire in order).
                let idx = due
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, d)| d.at())
                    .map(|(i, _)| i)
                    .expect("nonempty");
                let d = due.swap_remove(idx);
                now = now.max(d.at());
                match d {
                    Due::Complete { core, .. } => {
                        server.complete(now, core, &mut fx);
                        absorb(&fx, now, &mut due);
                    }
                    Due::Timer { gen, .. } => {
                        server.timer_fired(now, gen, &mut fx);
                        absorb(&fx, now, &mut due);
                    }
                    Due::Transition { .. } => {
                        server.transition_done(now, &mut fx);
                        absorb(&fx, now, &mut due);
                    }
                }
            }

            // --- invariants after every step ---
            assert!(server.busy_cores() <= server.core_count());
            assert!(server.power_w() >= 0.0);
            let bands: f64 = [
                Band::Active,
                Band::Transition,
                Band::Idle,
                Band::ShallowSleep,
                Band::DeepSleep,
            ]
            .iter()
            .map(|&b| server.residency().fraction_in(b, now))
            .sum();
            if now > SimTime::ZERO {
                assert!((bands - 1.0).abs() < 1e-9, "bands sum {bands}");
            }
            // Busy implies Active; asleep implies no busy cores.
            if server.busy_cores() > 0 {
                assert_eq!(server.mode(), ServerMode::Active);
            }
            if !server.is_awake() {
                assert_eq!(server.busy_cores(), 0);
            }
        }

        // Drain all obligations; everything submitted eventually completes.
        while let Some((idx, _)) = due
            .iter()
            .enumerate()
            .min_by_key(|(_, d)| d.at())
            .map(|(i, d)| (i, d.at()))
        {
            let d = due.swap_remove(idx);
            now = now.max(d.at());
            match d {
                Due::Complete { core, .. } => {
                    server.complete(now, core, &mut fx);
                    absorb(&fx, now, &mut due);
                }
                Due::Timer { gen, .. } => {
                    server.timer_fired(now, gen, &mut fx);
                    absorb(&fx, now, &mut due);
                }
                Due::Transition { .. } => {
                    server.transition_done(now, &mut fx);
                    absorb(&fx, now, &mut due);
                }
            }
        }
        assert_eq!(server.tasks_completed(), submitted);
        assert_eq!(server.busy_cores(), 0);
        assert_eq!(server.queue_len(), 0);
        // Energy is finite and monotone with the horizon.
        let e1 = server.energy_j(now);
        let e2 = server.energy_j(now + SimDuration::from_secs(1));
        assert!(e1.is_finite() && e2 > e1);
    }
}
