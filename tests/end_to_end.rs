//! Cross-crate integration tests: whole simulations exercised through the
//! public API, asserting physical and queueing-theoretic invariants.

use holdcsim::config::ArrivalConfig;
use holdcsim::prelude::*;

fn farm(servers: usize, cores: u32, rho: f64, secs: u64) -> SimConfig {
    SimConfig::server_farm(
        servers,
        cores,
        rho,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(secs),
    )
}

#[test]
fn mm1_latency_matches_theory() {
    // One single-core server, Poisson arrivals: an M/M/1 queue.
    // E[T] = 1/(mu - lambda); with 5 ms service and rho = 0.5, E[T] = 10 ms.
    let cfg = farm(1, 1, 0.5, 300);
    let report = Simulation::new(cfg).run();
    let mean = report.latency.mean;
    assert!((mean - 0.010).abs() < 0.0015, "M/M/1 mean latency {mean}");
}

#[test]
fn mmc_latency_beats_mm1_at_same_load() {
    // M/M/4 at the same per-core load has shorter waits than M/M/1.
    let r1 = Simulation::new(farm(1, 1, 0.7, 120)).run();
    let r4 = Simulation::new(farm(1, 4, 0.7, 120)).run();
    assert!(
        r4.latency.mean < r1.latency.mean,
        "M/M/4 {} vs M/M/1 {}",
        r4.latency.mean,
        r1.latency.mean
    );
}

#[test]
fn utilization_matches_offered_load() {
    let report = Simulation::new(farm(8, 4, 0.4, 60)).run();
    let util = report.mean_utilization();
    assert!((util - 0.4).abs() < 0.05, "measured utilization {util}");
}

#[test]
fn energy_equals_power_integral() {
    // Active-idle farm: energy must lie between idle-floor and peak-cap.
    let cfg = farm(4, 4, 0.3, 60);
    let profile = cfg.server_profile.clone();
    let report = Simulation::new(cfg).run();
    let idle_floor = 4.0 * profile.idle_power_w(4, holdcsim_power::states::CoreCState::C1) * 60.0;
    let peak_cap = 4.0 * profile.peak_power_w(4) * 60.0;
    let e = report.server_energy_j();
    assert!(
        e >= idle_floor * 0.99,
        "energy {e} below idle floor {idle_floor}"
    );
    assert!(e <= peak_cap * 1.01, "energy {e} above peak cap {peak_cap}");
}

#[test]
fn residency_bands_partition_time() {
    let cfg = farm(4, 2, 0.2, 30)
        .with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_millis(300)))
        .with_policy(PolicyKind::PackFirst);
    let report = Simulation::new(cfg).run();
    for (i, s) in report.servers.iter().enumerate() {
        let (a, w, idle, c6, deep) = s.residency;
        let sum = a + w + idle + c6 + deep;
        assert!((sum - 1.0).abs() < 1e-6, "server {i} bands sum {sum}");
    }
}

#[test]
fn all_jobs_complete_when_arrivals_stop_early() {
    // Arrivals only in the first second; horizon long enough to drain.
    let mut cfg = farm(4, 2, 0.3, 30);
    let mut rng = holdcsim_des::rng::SimRng::seed_from(1);
    let times: Vec<SimTime> = (0..500)
        .map(|_| SimTime::from_nanos((rng.uniform_f64() * 1e9) as u64))
        .collect();
    cfg.arrivals = ArrivalConfig::Trace(times);
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_submitted, 500);
    assert_eq!(report.jobs_completed, 500);
}

#[test]
fn global_queue_holds_overflow() {
    // One single-core server, burst of 50 simultaneous jobs, global queue.
    let mut cfg = farm(1, 1, 0.1, 30);
    cfg.use_global_queue = true;
    cfg.arrivals = ArrivalConfig::Trace(vec![SimTime::from_millis(1); 50]);
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_completed, 50);
    assert!(report.global_queue_tasks > 0, "queue never used");
}

#[test]
fn per_core_queues_have_higher_tail_than_unified() {
    // [37]: per-core queueing suffers head-of-line blocking at high load.
    let mut uni = farm(4, 4, 0.85, 60);
    uni.queue_mode = LocalQueueMode::Unified;
    let mut per = farm(4, 4, 0.85, 60);
    per.queue_mode = LocalQueueMode::PerCore;
    let ru = Simulation::new(uni).run();
    let rp = Simulation::new(per).run();
    assert!(
        rp.latency.p99 > ru.latency.p99,
        "per-core p99 {} should exceed unified p99 {}",
        rp.latency.p99,
        ru.latency.p99
    );
}

#[test]
fn deep_sleep_trades_latency_for_energy() {
    let base = farm(8, 2, 0.1, 60);
    let ai = Simulation::new(base.clone().with_sleep_policy(SleepPolicy::active_idle())).run();
    let dt = Simulation::new(
        base.with_policy(PolicyKind::PackFirst)
            .with_sleep_policy(SleepPolicy::delay_timer(SimDuration::from_millis(200))),
    )
    .run();
    assert!(dt.server_energy_j() < ai.server_energy_j());
    // Spare servers actually reached deep sleep.
    let sleeps: u64 = dt.servers.iter().map(|s| s.sleep_counts.0).sum();
    assert!(sleeps > 0, "no server ever slept");
}

#[test]
fn dvfs_slows_execution_and_cuts_core_power() {
    use holdcsim_des::time::SimTime as T;
    use holdcsim_server::prelude::*;
    use holdcsim_workload::ids::{JobId, TaskId};

    let profile = holdcsim_power::server_profile::ServerPowerProfile::xeon_e5_2680();
    let mk = |pstate: usize| {
        let mut cfg = ServerConfig::new(1);
        cfg.pstate = pstate;
        Server::new(T::ZERO, ServerId(0), cfg)
    };
    let mut slow = mk(0);
    let mut fast = mk(profile.pstates.len() - 1);
    let t = TaskHandle::new(TaskId::new(JobId(1), 0), SimDuration::from_millis(10));
    let mut fx_slow = EffectBuf::new();
    let mut fx_fast = EffectBuf::new();
    slow.submit(T::ZERO, t, &mut fx_slow);
    fast.submit(T::ZERO, t, &mut fx_fast);
    let d = |fx: &[Effect]| match fx[0] {
        Effect::TaskStarted { completes_in, .. } => completes_in,
        _ => panic!(),
    };
    assert!(
        d(&fx_slow) > d(&fx_fast) * 2,
        "slow {} fast {}",
        d(&fx_slow),
        d(&fx_fast)
    );
    assert!(slow.power_w() < fast.power_w());
}

#[test]
fn warmup_excludes_early_jobs_from_latency() {
    let mut with_warmup = farm(2, 2, 0.3, 20);
    with_warmup.warmup = SimDuration::from_secs(10);
    let with_warmup = Simulation::new(with_warmup).run();
    let without = Simulation::new(farm(2, 2, 0.3, 20)).run();
    // Same arrivals, but warm-up halves the measured population.
    assert_eq!(with_warmup.jobs_completed, without.jobs_completed);
    assert!(with_warmup.latency.count < without.latency.count);
    assert!(with_warmup.latency.count > 0);
}

#[test]
fn multi_socket_second_uncore_naps_at_partial_load() {
    // A second socket costs extra uncore power, but autonomous PC2 naps
    // keep it well below a second always-on PC0 uncore.
    let mut dual = farm(4, 4, 0.2, 30);
    dual.sockets_per_server = 2;
    dual.policy = PolicyKind::PackFirst;
    let mut single = farm(4, 4, 0.2, 30);
    single.policy = PolicyKind::PackFirst;
    let profile = single.server_profile.clone();
    let rd = Simulation::new(dual).run();
    let rs = Simulation::new(single).run();
    assert_eq!(rd.jobs_completed, rs.jobs_completed);
    let extra = rd.cpu_energy_j() - rs.cpu_energy_j();
    // The extra uncore costs something...
    assert!(extra > 0.0, "second socket should not be free");
    // ...but less than a second PC0 uncore on every server all run long.
    let always_on_bound = profile.package.pc0_w * 4.0 * 30.0;
    assert!(
        extra < always_on_bound * 0.95,
        "naps should undercut always-on: extra {extra} vs bound {always_on_bound}"
    );
}

#[test]
fn simulation_matches_erlang_c() {
    // One 8-core server at rho = 0.7 is an M/M/8 queue; the simulated mean
    // time in system must track the Erlang C formula.
    use holdcsim_des::analysis::MMc;
    let cfg = farm(1, 8, 0.7, 240);
    let report = Simulation::new(cfg).run();
    let mu = 1.0 / 0.005; // web search mean 5 ms
    let lambda = 0.7 * 8.0 * mu;
    let theory = MMc::new(lambda, mu, 8).mean_time_in_system();
    let sim = report.latency.mean;
    assert!(
        (sim / theory - 1.0).abs() < 0.08,
        "simulated {sim} vs Erlang C {theory}"
    );
}
