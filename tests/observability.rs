//! Cross-crate observability tests: determinism fingerprints, trace
//! export, metrics probes, profiling, and the trace-diff bisector, all
//! exercised through the public API end to end.

use holdcsim::config::{ClusterConfig, SimConfig, WanConfig};
use holdcsim::sim::Simulation;
use holdcsim_cluster::{run_federations, Federation};
use holdcsim_des::time::SimDuration;
use holdcsim_obs::{
    fingerprint, DiffOutcome, FingerprintConfig, MetricsConfig, ObsConfig, ProfileConfig,
    TraceConfig,
};
use holdcsim_workload::presets::WorkloadPreset;

fn observed_farm(seed: u64, obs: ObsConfig) -> SimConfig {
    let mut cfg = SimConfig::server_farm(
        4,
        2,
        0.4,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(5),
    )
    .with_seed(seed);
    cfg.obs = obs;
    cfg
}

fn fp_on(every: u64) -> ObsConfig {
    ObsConfig {
        fingerprint: Some(FingerprintConfig { every }),
        ..ObsConfig::default()
    }
}

#[test]
fn same_seed_produces_identical_fingerprint_files() {
    let run = || {
        let (_, arts) = Simulation::new(observed_farm(11, fp_on(256))).run_with_obs();
        arts.fingerprint_file().expect("fingerprinting is on")
    };
    let (a, b) = (run(), run());
    assert_eq!(a, b, "same seed, same fingerprint file");

    // And the diff of the parsed files reports identical.
    let (_, ca) = fingerprint::parse_file(&a).unwrap();
    let (_, cb) = fingerprint::parse_file(&b).unwrap();
    assert!(
        ca.len() > 3,
        "enough checkpoints to make the test meaningful"
    );
    match fingerprint::diff(&ca, &cb) {
        DiffOutcome::Identical { checkpoints, .. } => assert_eq!(checkpoints, ca.len()),
        other => panic!("same-seed runs must be identical, got {other:?}"),
    }
}

#[test]
fn different_seeds_diverge_and_the_diff_pinpoints_a_checkpoint() {
    let run = |seed| {
        let (_, arts) = Simulation::new(observed_farm(seed, fp_on(256))).run_with_obs();
        arts.fingerprint.expect("fingerprinting is on").checkpoints
    };
    let (ca, cb) = (run(1), run(2));
    match fingerprint::diff(&ca, &cb) {
        DiffOutcome::Diverged {
            index,
            last_common,
            a,
            b,
        } => {
            assert_ne!(a.hash, b.hash, "the divergent checkpoint really differs");
            // Everything before the pinpointed index matches.
            assert!(ca[..index].iter().eq(cb[..index].iter()));
            if let Some(c) = last_common {
                assert_eq!(c, ca[index - 1]);
            } else {
                assert_eq!(index, 0);
            }
        }
        // Different seeds make different workloads, so even the event
        // counts usually differ; both outcomes pinpoint real divergence,
        // but a seed pair landing on identical streams would be a bug.
        DiffOutcome::LengthMismatch { a_events, b_events } => {
            assert_ne!(a_events, b_events);
        }
        DiffOutcome::Identical { .. } => panic!("different seeds cannot be identical"),
    }
}

#[test]
fn federation_fingerprints_are_identical_at_any_worker_count() {
    let cluster = || {
        let base = SimConfig::server_farm(
            4,
            2,
            0.4,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(2),
        );
        let mut base = base;
        base.obs = fp_on(128);
        let wan = WanConfig::full_mesh(2, 10_000_000_000, SimDuration::from_millis(5));
        ClusterConfig::uniform(base, 2, wan)
    };
    // The same pair of federations, serial vs four workers.
    let serial = run_federations(vec![cluster(), cluster()], 1);
    let parallel = run_federations(vec![cluster(), cluster()], 4);
    for (s, p) in serial.iter().zip(&parallel) {
        assert_eq!(s.obs.len(), 2);
        for (so, po) in s.obs.iter().zip(&p.obs) {
            let (sf, pf) = (so.fingerprint_file(), po.fingerprint_file());
            assert!(sf.is_some(), "fingerprinting is on per site");
            assert_eq!(
                sf, pf,
                "site {:?} fingerprints differ by worker count",
                so.site
            );
        }
        // Site ids label the artifacts in site order.
        assert_eq!(s.obs[0].site, Some(0));
        assert_eq!(s.obs[1].site, Some(1));
        assert_eq!(s.to_json(), p.to_json());
    }
}

/// The conservative-window parallel arms leave byte-identical per-site
/// fingerprint files — the same check `trace-diff` runs, via the same
/// parse/diff path — at every worker count, on a federation that really
/// forwards jobs over the WAN.
#[test]
fn federation_window_fingerprints_match_serial_at_any_worker_count() {
    let cluster = || {
        let mut base = SimConfig::server_farm(
            4,
            2,
            0.4,
            WorkloadPreset::WebSearch.template(),
            SimDuration::from_secs(2),
        );
        base.obs = fp_on(128);
        let wan = WanConfig::full_mesh(2, 10_000_000_000, SimDuration::from_millis(5));
        let mut cc = ClusterConfig::uniform(base, 2, wan)
            .with_geo(holdcsim_sched::geo::GeoPolicy::LoadBalanced);
        // All home traffic lands at site 0 so dispatch must forward.
        cc.sites[0].affinity = Some(1.0);
        cc.sites[1].affinity = Some(0.0);
        cc
    };
    let reference = Federation::new(&cluster()).run_serial();
    assert!(reference.jobs_forwarded() > 0, "the WAN must be exercised");
    for workers in [1usize, 2, 4] {
        let parallel = Federation::new(&cluster()).run_with_workers(workers);
        assert_eq!(reference.to_json(), parallel.to_json());
        for (site, (so, po)) in reference.obs.iter().zip(&parallel.obs).enumerate() {
            let sf = so.fingerprint_file().expect("fingerprinting is on");
            let pf = po.fingerprint_file().expect("fingerprinting is on");
            let (_, ca) = fingerprint::parse_file(&sf).unwrap();
            let (_, cb) = fingerprint::parse_file(&pf).unwrap();
            match fingerprint::diff(&ca, &cb) {
                DiffOutcome::Identical { checkpoints, .. } => {
                    assert_eq!(checkpoints, ca.len());
                }
                other => panic!("site {site} fingerprints diverge at {workers} workers: {other:?}"),
            }
            assert_eq!(sf, pf, "site {site} file bytes at {workers} workers");
        }
    }
}

#[test]
fn trace_exports_are_structured_and_capped() {
    let obs = ObsConfig {
        trace: Some(TraceConfig {
            limit: 100,
            ..TraceConfig::default()
        }),
        ..ObsConfig::default()
    };
    let (report, arts) = Simulation::new(observed_farm(5, obs)).run_with_obs();
    let trace = arts.trace.as_ref().expect("tracing is on");
    assert_eq!(trace.records.len(), 100, "the --trace-limit cap holds");
    assert!(trace.dropped > 0, "a 5 s run overflows a 100-record cap");
    assert_eq!(trace.seen, report.events_processed);

    let jsonl = arts.trace_jsonl().unwrap();
    assert_eq!(jsonl.lines().count(), 100);
    assert!(jsonl.lines().all(|l| l.starts_with("{\"n\":")
        && l.contains("\"t_ns\":")
        && l.contains("\"kind\":\"")
        && l.ends_with('}')));

    let chrome = arts.trace_chrome().unwrap();
    assert!(chrome.starts_with("{\"traceEvents\":["));
    assert!(chrome.trim_end().ends_with("]}"));
    assert!(chrome.contains("\"ph\":\"i\""));
    assert!(chrome.contains("\"ts\":"));
}

#[test]
fn metrics_probes_sample_the_declared_gauges() {
    let obs = ObsConfig {
        metrics: Some(MetricsConfig {
            period: SimDuration::from_millis(50),
        }),
        ..ObsConfig::default()
    };
    let (_, arts) = Simulation::new(observed_farm(5, obs)).run_with_obs();
    let metrics = arts.metrics.as_ref().expect("metrics are on");
    for probe in [
        "global_queue_depth",
        "busy_cores",
        "awake_servers",
        "sleeping_servers",
        "jobs_in_flight",
    ] {
        assert!(metrics.names.contains(&probe), "missing probe {probe}");
    }
    let jsonl = arts.metrics_jsonl().unwrap();
    assert!(
        jsonl.lines().count() > 50,
        "5 s at 50 ms yields many samples"
    );
    assert!(jsonl.contains("{\"probe\":\"busy_cores\",\"t_s\":"));
}

#[test]
fn profiler_counts_every_event() {
    let obs = ObsConfig {
        profile: Some(ProfileConfig { sample: 8 }),
        ..ObsConfig::default()
    };
    let (report, arts) = Simulation::new(observed_farm(5, obs)).run_with_obs();
    let profile = arts.profile.as_ref().expect("profiling is on");
    assert_eq!(profile.total_events(), report.events_processed);
    let table = arts.profile_table().unwrap();
    assert!(
        table.contains("JobArrival"),
        "hot kinds appear in the table"
    );
    assert!(table.contains("events/s"));
}

#[test]
fn wall_clock_lands_in_summary_but_not_in_json() {
    let (report, _) = Simulation::new(observed_farm(5, ObsConfig::default())).run_with_obs();
    assert!(report.wall_s > 0.0);
    assert!(report.events_per_sec() > 0.0);
    assert!(report.summary().contains("events/s"));
    // Exported artifacts must stay machine-independent.
    assert!(!report.to_json().contains("wall"));

    // `run()` reports the same wall-clock accounting.
    let report = Simulation::new(observed_farm(5, ObsConfig::default())).run();
    assert!(report.wall_s > 0.0);
}

#[test]
fn observability_does_not_perturb_the_simulation() {
    let on = ObsConfig {
        trace: Some(TraceConfig::default()),
        fingerprint: Some(FingerprintConfig::default()),
        metrics: Some(MetricsConfig::default()),
        profile: Some(ProfileConfig::default()),
    };
    let (observed, arts) = Simulation::new(observed_farm(9, on)).run_with_obs();
    let baseline = Simulation::new(observed_farm(9, ObsConfig::default())).run();
    assert_eq!(observed.to_json(), baseline.to_json());
    assert!(!arts.is_empty());
}
