//! Integration tests spanning the network substrate and the driver:
//! DAG jobs communicating over topologies in both flow and packet modes.

use holdcsim::config::{ArrivalConfig, CommModel, NetworkConfig, TopologySpec};
use holdcsim::prelude::*;
use holdcsim_network::topologies::LinkSpec;

fn dag_cfg(comm: CommModel, bytes: u64, jobs: usize, secs: u64) -> SimConfig {
    let template = JobTemplate::two_tier(
        ServiceDist::Deterministic(SimDuration::from_millis(5)),
        ServiceDist::Deterministic(SimDuration::from_millis(10)),
        bytes,
    );
    let mut cfg = SimConfig::server_farm(16, 4, 0.2, template, SimDuration::from_secs(secs));
    let mut rng = holdcsim_des::rng::SimRng::seed_from(2);
    let mut t = SimTime::ZERO;
    let times: Vec<SimTime> = (0..jobs)
        .map(|_| {
            t += SimDuration::from_secs_f64(rng.exp(200.0));
            t
        })
        .collect();
    cfg.arrivals = ArrivalConfig::Trace(times);
    let mut net = NetworkConfig::fat_tree(4);
    net.comm = comm;
    cfg.network = Some(net);
    cfg
}

#[test]
fn flow_mode_completes_all_dag_jobs() {
    let report = Simulation::new(dag_cfg(CommModel::Flow, 1_000_000, 200, 30)).run();
    assert_eq!(report.jobs_completed, 200);
    let net = report.network.expect("network simulated");
    assert!(net.flows > 0, "no flows admitted");
}

#[test]
fn packet_mode_completes_all_dag_jobs() {
    let report = Simulation::new(dag_cfg(
        CommModel::Packet {
            mtu: 1_500,
            buffer_bytes: 1 << 20,
        },
        150_000,
        100,
        30,
    ))
    .run();
    assert_eq!(report.jobs_completed, 100);
    let net = report.network.expect("network simulated");
    assert!(
        net.packets_forwarded > 100 * 100,
        "too few packets forwarded"
    );
}

#[test]
fn transfer_time_adds_to_job_latency() {
    // Same jobs; bigger flows should lengthen completion (1 MB vs 50 MB on
    // 1 GbE ≈ 8 ms vs 400 ms of transfer).
    let small = Simulation::new(dag_cfg(CommModel::Flow, 1_000_000, 100, 60)).run();
    let large = Simulation::new(dag_cfg(CommModel::Flow, 50_000_000, 100, 60)).run();
    assert!(
        large.latency.mean > small.latency.mean + 0.2,
        "large {} vs small {}",
        large.latency.mean,
        small.latency.mean
    );
}

#[test]
fn latency_includes_critical_path_and_transfer_floor() {
    // Deterministic services: 5 ms + 10 ms; transfer of 1 MB at 1 Gb/s
    // adds ≥ 8 ms when tasks land on different servers. Even same-server
    // placements bound latency below by 15 ms.
    let report = Simulation::new(dag_cfg(CommModel::Flow, 1_000_000, 50, 30)).run();
    assert!(report.latency.p50 >= 0.015, "p50 {}", report.latency.p50);
}

#[test]
fn all_topologies_carry_traffic() {
    for (spec, servers) in [
        (TopologySpec::FatTree { k: 4 }, 16),
        (
            TopologySpec::FlattenedButterfly {
                k: 2,
                hosts_per_switch: 4,
            },
            16,
        ),
        (TopologySpec::BCube { n: 4, levels: 1 }, 16),
        (TopologySpec::CamCube { x: 2, y: 2, z: 4 }, 16),
        (TopologySpec::Star, 16),
    ] {
        let mut cfg = dag_cfg(CommModel::Flow, 500_000, 50, 20);
        let net = cfg.network.as_mut().expect("network configured");
        net.topology = spec;
        net.link = LinkSpec::gigabit();
        cfg.server_count = servers;
        let report = Simulation::new(cfg).run();
        assert_eq!(report.jobs_completed, 50, "{spec:?} lost jobs");
    }
}

#[test]
fn lpi_reduces_switch_energy_on_idle_network() {
    // Few, widely-spaced jobs: ports should spend most time in LPI.
    let mut with_lpi = dag_cfg(CommModel::Flow, 100_000, 20, 30);
    with_lpi.network.as_mut().expect("net").lpi_hold = Some(SimDuration::from_millis(10));
    let mut without = dag_cfg(CommModel::Flow, 100_000, 20, 30);
    without.network.as_mut().expect("net").lpi_hold = None;
    let e_lpi = Simulation::new(with_lpi)
        .run()
        .network
        .expect("net")
        .switch_energy_j;
    let e_raw = Simulation::new(without)
        .run()
        .network
        .expect("net")
        .switch_energy_j;
    assert!(
        e_lpi < e_raw * 0.95,
        "LPI {e_lpi} should undercut always-on {e_raw}"
    );
}

#[test]
fn network_reports_are_deterministic() {
    let a = Simulation::new(dag_cfg(CommModel::Flow, 1_000_000, 100, 20)).run();
    let b = Simulation::new(dag_cfg(CommModel::Flow, 1_000_000, 100, 20)).run();
    assert_eq!(a.events_processed, b.events_processed);
    let (na, nb) = (a.network.expect("net"), b.network.expect("net"));
    assert_eq!(na.flows, nb.flows);
    assert!((na.switch_energy_j - nb.switch_energy_j).abs() < 1e-9);
}

/// A two-server star where the two-tier job's tiers are pinned to
/// different servers by class, so every job crosses the network exactly
/// once with a deterministic service floor.
fn pinned_star_cfg(comm: CommModel, bytes: u64, arrive: SimTime, secs: u64) -> SimConfig {
    let template = JobTemplate::two_tier(
        ServiceDist::Deterministic(SimDuration::from_millis(5)),
        ServiceDist::Deterministic(SimDuration::from_millis(10)),
        bytes,
    );
    let mut cfg = SimConfig::server_farm(2, 4, 0.2, template, SimDuration::from_secs(secs));
    cfg.server_classes = vec![0, 1];
    cfg.arrivals = ArrivalConfig::Trace(vec![arrive]);
    let mut net = NetworkConfig::fat_tree(4);
    net.topology = TopologySpec::Star;
    net.link = LinkSpec::gigabit();
    net.comm = comm;
    net.lpi_hold = None;
    net.ingress_bytes = None;
    cfg.network = Some(net);
    cfg
}

#[test]
fn flow_through_asleep_switch_pays_wake_latency() {
    // One flow at t = 2 s. With LPI enabled, the star switch's ports have
    // been asleep since shortly after t = 0, so the flow may not start
    // until the slowest port along its route wakes; with LPI disabled, it
    // starts immediately. Same seed, same services — the entire latency
    // difference is the wake cost the flow model used to drop.
    let arrive = SimTime::from_secs(2);
    let mut asleep = pinned_star_cfg(CommModel::Flow, 125_000, arrive, 4);
    asleep.network.as_mut().expect("net").lpi_hold = Some(SimDuration::from_millis(1));
    let awake = pinned_star_cfg(CommModel::Flow, 125_000, arrive, 4);
    let r_asleep = Simulation::new(asleep).run();
    let r_awake = Simulation::new(awake).run();
    assert_eq!(r_asleep.jobs_completed, 1);
    assert_eq!(r_awake.jobs_completed, 1);
    let (la, lw) = (r_asleep.latency.mean, r_awake.latency.mean);
    assert!(
        la > lw + 1e-6,
        "asleep-path flow must be measurably slower: asleep {la} vs awake {lw}"
    );
    assert!(
        la < lw + 0.05,
        "wake cost is bounded by the port/linecard wake latencies: {la} vs {lw}"
    );
}

/// Property: for a single uncontended transfer over an all-awake star,
/// the Packet and Flow communication models agree on transfer latency
/// within segmentation tolerance (last-packet store-and-forward, partial
/// final segment, and per-hop link latency are the only divergences).
#[test]
fn packet_and_flow_agree_on_uncontended_transfer() {
    const MTU: u64 = 1_500;
    const RATE: f64 = 1e9;
    let link_lat = 5e-6; // LinkSpec::gigabit() per-traversal latency
    let mut rng = holdcsim_des::rng::SimRng::seed_from(0xF10F);
    for _ in 0..6 {
        let bytes = 50_000 + rng.below(1_000_000);
        let arrive = SimTime::from_millis(1 + rng.below(500));
        let flow = Simulation::new(pinned_star_cfg(CommModel::Flow, bytes, arrive, 6)).run();
        let packet = Simulation::new(pinned_star_cfg(
            CommModel::Packet {
                mtu: MTU,
                buffer_bytes: 8 << 20,
            },
            bytes,
            arrive,
            6,
        ))
        .run();
        assert_eq!(flow.jobs_completed, 1, "flow lost the job ({bytes} B)");
        assert_eq!(packet.jobs_completed, 1, "packet lost the job ({bytes} B)");
        let (lf, lp) = (flow.latency.mean, packet.latency.mean);
        // One extra MTU of store-and-forward, the partial tail segment,
        // and two link traversals bound the models' divergence.
        let tolerance = 3.0 * (MTU as f64 * 8.0 / RATE) + 4.0 * link_lat + 1e-5;
        assert!(
            (lf - lp).abs() <= tolerance,
            "flow {lf} vs packet {lp} for {bytes} B exceeds tolerance {tolerance}"
        );
    }
}

#[test]
fn global_queue_pull_never_overcommits_cores() {
    // Fan-out jobs over a star with the global queue: every placement and
    // every pull must count the tasks already committed to a server (core
    // reservations held while inbound transfers land). Sample the invariant
    // `busy + committed <= cores` throughout the run.
    let template = JobTemplate::FanOutFanIn {
        root: ServiceDist::Deterministic(SimDuration::from_millis(2)),
        leaf: ServiceDist::Deterministic(SimDuration::from_millis(6)),
        agg: ServiceDist::Deterministic(SimDuration::from_millis(2)),
        width: 8,
        transfer_bytes: 4_000_000, // ~32 ms per edge on 1 GbE, worse shared
    };
    let mut cfg = SimConfig::server_farm(2, 2, 0.6, template, SimDuration::from_secs(30));
    cfg.use_global_queue = true;
    cfg.arrivals =
        ArrivalConfig::Trace((0..40).map(|i| SimTime::from_millis(1 + i * 25)).collect());
    let mut net = NetworkConfig::fat_tree(4);
    net.topology = TopologySpec::Star;
    net.comm = CommModel::Flow;
    cfg.network = Some(net);
    let mut sim = Simulation::new(cfg);
    for step in 1..=2_000u64 {
        sim.run_to(SimTime::from_millis(step * 10));
        let dc = sim.datacenter();
        for (s, &committed) in dc.servers().iter().zip(dc.committed()) {
            assert!(
                s.busy_cores() + committed <= s.core_count(),
                "server {} over-committed at {} ms: busy {} + committed {} > {} cores",
                s.id(),
                step * 10,
                s.busy_cores(),
                committed,
                s.core_count()
            );
        }
    }
    let report = sim.run();
    assert_eq!(report.jobs_completed, 40);
}

#[test]
fn fan_out_jobs_traverse_network() {
    let template = JobTemplate::FanOutFanIn {
        root: ServiceDist::Deterministic(SimDuration::from_millis(2)),
        leaf: ServiceDist::Deterministic(SimDuration::from_millis(8)),
        agg: ServiceDist::Deterministic(SimDuration::from_millis(2)),
        width: 6,
        transfer_bytes: 200_000,
    };
    let mut cfg = SimConfig::server_farm(16, 4, 0.2, template, SimDuration::from_secs(30));
    cfg.arrivals =
        ArrivalConfig::Trace((0..50).map(|i| SimTime::from_millis(1 + i * 100)).collect());
    cfg.network = Some(NetworkConfig::fat_tree(4));
    let report = Simulation::new(cfg).run();
    assert_eq!(report.jobs_completed, 50);
    // Fan-out latency ≥ root + leaf + agg = 12 ms.
    assert!(report.latency.p50 >= 0.012);
}
