//! Property-style tests on the core data structures and invariants,
//! spanning crates. Cases are generated with the kernel's own
//! deterministic [`SimRng`] rather than an external property-testing
//! crate, so the workspace stays dependency-free and every failure is
//! reproducible from the fixed seed.

use holdcsim_des::queue::EventQueue;
use holdcsim_des::rng::SimRng;
use holdcsim_des::stats::{SampleSet, Tally, TimeWeighted};
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::FlowNet;
use holdcsim_network::ids::{FlowId, LinkId};
use holdcsim_network::routing::Router;
use holdcsim_network::topologies::{fat_tree, star, LinkSpec};
use holdcsim_workload::dag::{JobDag, TaskSpec};

const CASES: usize = 64;

/// The event calendar pops in nondecreasing time order and FIFO within a
/// timestamp, regardless of push order.
#[test]
fn queue_pops_sorted() {
    let mut rng = SimRng::seed_from(0xC0FFEE);
    for _ in 0..CASES {
        let n = 1 + rng.below(200) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_nanos(rng.below(1_000)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "FIFO violated within a timestamp");
                }
            }
            last = Some((t, i));
        }
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn queue_cancellation_is_exact() {
    let mut rng = SimRng::seed_from(0xCA4CE1);
    for _ in 0..CASES {
        let n = 1 + rng.below(100) as usize;
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..n)
            .map(|i| q.push(SimTime::from_nanos(i as u64), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            if rng.chance(0.5) {
                q.cancel(*tok);
            } else {
                expect.push(i);
            }
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, expect);
    }
}

/// Welford tally matches the naive two-pass computation.
#[test]
fn tally_matches_naive() {
    let mut rng = SimRng::seed_from(0x7A11);
    for _ in 0..CASES {
        let n = 2 + rng.below(200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1e6, 1e6)).collect();
        let tally: Tally = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((tally.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        assert!((tally.population_variance() - var).abs() <= 1e-4 * var.max(1.0));
    }
}

/// Time-weighted integral is invariant to splitting an interval with
/// redundant set() calls.
#[test]
fn timeweighted_split_invariance() {
    let mut rng = SimRng::seed_from(0x7133);
    for _ in 0..CASES {
        let v = rng.uniform_range(-100.0, 100.0);
        let t1 = 1 + rng.below(1_000);
        let t2 = 1 + rng.below(1_000);
        let end = SimTime::from_nanos(t1 + t2);
        let plain = TimeWeighted::new(SimTime::ZERO, v);
        let mut split = TimeWeighted::new(SimTime::ZERO, v);
        split.set(SimTime::from_nanos(t1), v);
        assert!((plain.integral(end) - split.integral(end)).abs() < 1e-9);
    }
}

/// Nearest-rank quantiles are actual observed samples and monotone in q.
#[test]
fn quantiles_are_samples_and_monotone() {
    let mut rng = SimRng::seed_from(0x9A27);
    for _ in 0..CASES {
        let n = 1 + rng.below(100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform_range(0.0, 1e3)).collect();
        let mut s = SampleSet::unbounded();
        for &x in &xs {
            s.record(x);
        }
        let qs = s.quantiles(&[0.1, 0.5, 0.9, 1.0]);
        let mut prev = f64::NEG_INFINITY;
        for q in qs.into_iter().flatten() {
            assert!(xs.contains(&q));
            assert!(q >= prev);
            prev = q;
        }
    }
}

/// Random layered DAGs from the builder are acyclic with consistent
/// adjacency, and the critical path never exceeds total work.
#[test]
fn dag_invariants() {
    let mut rng = SimRng::seed_from(0xDA6);
    for _ in 0..CASES {
        let layers_n = 1 + rng.below(4) as usize;
        let layer_sizes: Vec<u32> = (0..layers_n).map(|_| 1 + rng.below(3) as u32).collect();
        let service_ms = 1 + rng.below(49);
        let mut b = JobDag::builder();
        let mut idx = 0u32;
        let mut layers: Vec<Vec<u32>> = Vec::new();
        for &w in &layer_sizes {
            let mut layer = Vec::new();
            for _ in 0..w {
                b = b.task(TaskSpec::compute(SimDuration::from_millis(service_ms)));
                if let Some(prev) = layers.last() {
                    b = b.edge(prev[0], idx, 10);
                }
                layer.push(idx);
                idx += 1;
            }
            layers.push(layer);
        }
        let dag = b.build().expect("layered construction is acyclic");
        assert!(dag.critical_path() <= dag.total_work());
        assert_eq!(dag.topo_order().len(), dag.len());
        for &r in dag.roots() {
            assert!(dag.predecessors(r).is_empty());
        }
    }
}

/// Max-min fair allocation never oversubscribes a link, and the total
/// rate of flows through the star's hub is positive when flows exist.
#[test]
fn flow_rates_respect_capacity() {
    let mut rng = SimRng::seed_from(0xF10);
    for _ in 0..CASES {
        let built = star(6, LinkSpec::gigabit());
        let mut router = Router::new();
        let mut net = FlowNet::new(&built.topology);
        let mut id = 0u64;
        let pairs_n = 1 + rng.below(20) as usize;
        for _ in 0..pairs_n {
            let a = rng.below(6) as usize;
            let b = rng.below(6) as usize;
            if a == b {
                continue;
            }
            let (ha, hb) = (built.hosts[a], built.hosts[b]);
            let route = router
                .route(&built.topology, ha, hb, id)
                .expect("star connected");
            net.add_flow(SimTime::ZERO, FlowId(id), ha, hb, &route.links, 1_000);
            id += 1;
        }
        for l in 0..built.topology.links().len() {
            let u = net.link_utilization(LinkId(l as u32));
            assert!(u <= 1.0 + 1e-9, "link {l} oversubscribed: {u}");
        }
    }
}

/// ECMP routes in a fat tree are always shortest and loop-free.
#[test]
fn fat_tree_routes_shortest_loop_free() {
    let mut rng = SimRng::seed_from(0xFA7);
    let built = fat_tree(4, LinkSpec::gigabit());
    let mut router = Router::new();
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let a = rng.below(16) as usize;
        let b = rng.below(16) as usize;
        let (ha, hb) = (built.hosts[a], built.hosts[b]);
        let route = router
            .route(&built.topology, ha, hb, seed)
            .expect("connected");
        let dist = router.distance(&built.topology, ha, hb).expect("connected");
        assert_eq!(route.hops() as u32, dist);
        let mut seen = std::collections::HashSet::new();
        for n in &route.nodes {
            assert!(seen.insert(*n), "loop at {n}");
        }
    }
}
