//! Property-style tests on the core data structures and invariants,
//! spanning crates. Cases are generated with the kernel's own
//! deterministic [`SimRng`] rather than an external property-testing
//! crate, so the workspace stays dependency-free and every failure is
//! reproducible from the fixed seed.

use holdcsim_des::queue::EventQueue;
use holdcsim_des::rng::SimRng;
use holdcsim_des::stats::{SampleSet, Tally, TimeWeighted};
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::{FlowNet, FlowSolverKind};
use holdcsim_network::ids::{FlowId, LinkId};
use holdcsim_network::routing::Router;
use holdcsim_network::topologies::{fat_tree, star, LinkSpec};
use holdcsim_workload::dag::{JobDag, TaskSpec};

const CASES: usize = 64;

/// The event calendar pops in nondecreasing time order and FIFO within a
/// timestamp, regardless of push order.
#[test]
fn queue_pops_sorted() {
    let mut rng = SimRng::seed_from(0xC0FFEE);
    for _ in 0..CASES {
        let n = 1 + rng.below(200) as usize;
        let mut q = EventQueue::new();
        for i in 0..n {
            q.push(SimTime::from_nanos(rng.below(1_000)), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                assert!(t >= lt);
                if t == lt {
                    assert!(i > li, "FIFO violated within a timestamp");
                }
            }
            last = Some((t, i));
        }
    }
}

/// Cancelling an arbitrary subset removes exactly that subset.
#[test]
fn queue_cancellation_is_exact() {
    let mut rng = SimRng::seed_from(0xCA4CE1);
    for _ in 0..CASES {
        let n = 1 + rng.below(100) as usize;
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..n)
            .map(|i| q.push(SimTime::from_nanos(i as u64), i))
            .collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            if rng.chance(0.5) {
                q.cancel(*tok);
            } else {
                expect.push(i);
            }
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(got, expect);
    }
}

/// Welford tally matches the naive two-pass computation.
#[test]
fn tally_matches_naive() {
    let mut rng = SimRng::seed_from(0x7A11);
    for _ in 0..CASES {
        let n = 2 + rng.below(200) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform_range(-1e6, 1e6)).collect();
        let tally: Tally = xs.iter().copied().collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((tally.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        assert!((tally.population_variance() - var).abs() <= 1e-4 * var.max(1.0));
    }
}

/// Time-weighted integral is invariant to splitting an interval with
/// redundant set() calls.
#[test]
fn timeweighted_split_invariance() {
    let mut rng = SimRng::seed_from(0x7133);
    for _ in 0..CASES {
        let v = rng.uniform_range(-100.0, 100.0);
        let t1 = 1 + rng.below(1_000);
        let t2 = 1 + rng.below(1_000);
        let end = SimTime::from_nanos(t1 + t2);
        let plain = TimeWeighted::new(SimTime::ZERO, v);
        let mut split = TimeWeighted::new(SimTime::ZERO, v);
        split.set(SimTime::from_nanos(t1), v);
        assert!((plain.integral(end) - split.integral(end)).abs() < 1e-9);
    }
}

/// Nearest-rank quantiles are actual observed samples and monotone in q.
#[test]
fn quantiles_are_samples_and_monotone() {
    let mut rng = SimRng::seed_from(0x9A27);
    for _ in 0..CASES {
        let n = 1 + rng.below(100) as usize;
        let xs: Vec<f64> = (0..n).map(|_| rng.uniform_range(0.0, 1e3)).collect();
        let mut s = SampleSet::unbounded();
        for &x in &xs {
            s.record(x);
        }
        let qs = s.quantiles(&[0.1, 0.5, 0.9, 1.0]);
        let mut prev = f64::NEG_INFINITY;
        for q in qs.into_iter().flatten() {
            assert!(xs.contains(&q));
            assert!(q >= prev);
            prev = q;
        }
    }
}

/// Random layered DAGs from the builder are acyclic with consistent
/// adjacency, and the critical path never exceeds total work.
#[test]
fn dag_invariants() {
    let mut rng = SimRng::seed_from(0xDA6);
    for _ in 0..CASES {
        let layers_n = 1 + rng.below(4) as usize;
        let layer_sizes: Vec<u32> = (0..layers_n).map(|_| 1 + rng.below(3) as u32).collect();
        let service_ms = 1 + rng.below(49);
        let mut b = JobDag::builder();
        let mut idx = 0u32;
        let mut layers: Vec<Vec<u32>> = Vec::new();
        for &w in &layer_sizes {
            let mut layer = Vec::new();
            for _ in 0..w {
                b = b.task(TaskSpec::compute(SimDuration::from_millis(service_ms)));
                if let Some(prev) = layers.last() {
                    b = b.edge(prev[0], idx, 10);
                }
                layer.push(idx);
                idx += 1;
            }
            layers.push(layer);
        }
        let dag = b.build().expect("layered construction is acyclic");
        assert!(dag.critical_path() <= dag.total_work());
        assert_eq!(dag.topo_order().len(), dag.len());
        for &r in dag.roots() {
            assert!(dag.predecessors(r).is_empty());
        }
    }
}

/// Max-min fair allocation never oversubscribes a link, and the total
/// rate of flows through the star's hub is positive when flows exist.
#[test]
fn flow_rates_respect_capacity() {
    let mut rng = SimRng::seed_from(0xF10);
    for _ in 0..CASES {
        let built = star(6, LinkSpec::gigabit());
        let mut router = Router::new();
        let mut net = FlowNet::new(&built.topology);
        let mut id = 0u64;
        let pairs_n = 1 + rng.below(20) as usize;
        for _ in 0..pairs_n {
            let a = rng.below(6) as usize;
            let b = rng.below(6) as usize;
            if a == b {
                continue;
            }
            let (ha, hb) = (built.hosts[a], built.hosts[b]);
            let route = router
                .route(&built.topology, ha, hb, id)
                .expect("star connected");
            net.add_flow(SimTime::ZERO, FlowId(id), ha, hb, &route.links, 1_000);
            id += 1;
        }
        for l in 0..built.topology.links().len() {
            let u = net.link_utilization(LinkId(l as u32));
            assert!(u <= 1.0 + 1e-9, "link {l} oversubscribed: {u}");
        }
    }
}

/// One randomized flow-churn pass over a fat tree: add random-pair
/// flows, cancel some, and run completions, reporting each live flow's
/// rate after every op via `observe` and every completion batch via
/// `completions`.
fn drive_flow_churn(
    net: &mut FlowNet,
    trial: u64,
    mut observe: impl FnMut(u64, FlowId, f64),
    mut completions: impl FnMut(u64, &[(FlowId, SimTime)]),
) {
    let built = fat_tree(4, LinkSpec::gigabit());
    let topo = built.topology;
    let hosts = built.hosts;
    let mut router = Router::new();
    let mut rng = SimRng::seed_from(0x11C7EA).substream(trial);
    let mut live: Vec<(u64, FlowId)> = Vec::new();
    let mut next_id = 0u64;
    let mut now = SimTime::ZERO;
    for step in 0..300u64 {
        now += SimDuration::from_micros(1 + rng.below(40));
        match rng.below(10) {
            0..=4 => {
                let i = rng.below(16) as usize;
                let j = (i + 1 + rng.below(15) as usize) % 16;
                let links = router.route(&topo, hosts[i], hosts[j], next_id).unwrap();
                let id = FlowId(next_id);
                next_id += 1;
                let key = net.add_flow(
                    now,
                    id,
                    hosts[i],
                    hosts[j],
                    &links.links,
                    1 + rng.below(4_000_000),
                );
                live.push((key, id));
            }
            5..=7 if !live.is_empty() => {
                let i = rng.below(live.len() as u64) as usize;
                let (key, _) = live.swap_remove(i);
                assert!(net.remove_flow(now, key));
            }
            _ => {
                if let Some(due) = net.next_due() {
                    now = now.max(due);
                    net.advance_due(due);
                }
            }
        }
        let done: Vec<(FlowId, SimTime)> = net
            .take_completed()
            .into_iter()
            .map(|c| (c.id, now))
            .collect();
        live.retain(|(_, id)| !done.iter().any(|(d, _)| d == id));
        completions(step, &done);
        for &(_, id) in &live {
            observe(step, id, net.flow_rate_bps(id).expect("live flow is rated"));
        }
    }
}

/// Satellite check: over arbitrary add/remove/complete sequences on
/// fat-tree topologies, the incremental solver's rates match the
/// reference progressive-filling solver within 1e-9 (relative; plus a
/// couple of 2⁻²⁰ bps quanta absolute — the fixed-point max-min solution
/// is non-unique at exact floor ties).
#[test]
fn incremental_flow_solver_matches_reference_on_fat_trees() {
    for trial in 0..6u64 {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut reference = FlowNet::with_solver(&built.topology, FlowSolverKind::Reference);
        let mut incremental = FlowNet::with_solver(&built.topology, FlowSolverKind::Incremental);
        let mut ref_rates: Vec<(u64, u64, f64)> = Vec::new();
        let mut inc_rates: Vec<(u64, u64, f64)> = Vec::new();
        let mut ref_done: Vec<(FlowId, SimTime)> = Vec::new();
        let mut inc_done: Vec<(FlowId, SimTime)> = Vec::new();
        drive_flow_churn(
            &mut reference,
            trial,
            |step, id, rate| ref_rates.push((step, id.0, rate)),
            |_, done| ref_done.extend_from_slice(done),
        );
        drive_flow_churn(
            &mut incremental,
            trial,
            |step, id, rate| inc_rates.push((step, id.0, rate)),
            |_, done| inc_done.extend_from_slice(done),
        );
        assert_eq!(ref_rates.len(), inc_rates.len(), "trial {trial}");
        let quantum = 1.0 / (1u64 << 20) as f64;
        for (&(s, id, ra), &(_, _, rb)) in ref_rates.iter().zip(&inc_rates) {
            assert!(
                (ra - rb).abs() <= (1e-9 * ra.max(rb)).max(4.0 * quantum),
                "trial {trial} step {s} flow {id}: {ra} vs {rb}"
            );
        }
        let ids_a: Vec<FlowId> = ref_done.iter().map(|&(id, _)| id).collect();
        let ids_b: Vec<FlowId> = inc_done.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids_a, ids_b, "trial {trial}: completion sequences differ");
    }
}

/// One randomized batched-churn pass: admissions arrive in bursts via
/// `add_flow_batched` + `flush` (half biased into an incast on host 0),
/// interleaved with cancellations and completion advances. Returns the
/// full rate trajectory and every completion with the instant it was
/// harvested at (the due for advances, the op time otherwise).
/// `(step, flow id, rate bps)` samples plus `(flow, harvest instant)`
/// completions from one churn pass.
type ChurnTrace = (Vec<(u64, u64, f64)>, Vec<(FlowId, SimTime)>);

fn drive_batched_churn(net: &mut FlowNet, trial: u64) -> ChurnTrace {
    let built = fat_tree(4, LinkSpec::gigabit());
    let topo = built.topology;
    let hosts = built.hosts;
    let mut router = Router::new();
    let mut rng = SimRng::seed_from(0xBA7C4).substream(trial);
    let mut live: Vec<(u64, FlowId)> = Vec::new();
    let mut rates: Vec<(u64, u64, f64)> = Vec::new();
    let mut done: Vec<(FlowId, SimTime)> = Vec::new();
    let mut next_id = 0u64;
    let mut now = SimTime::ZERO;
    for step in 0..200u64 {
        now += SimDuration::from_micros(1 + rng.below(40));
        let mut instant = now;
        match rng.below(10) {
            0..=4 => {
                // An admission wave: one flush-time solve covers it all.
                let burst = 1 + rng.below(6);
                for _ in 0..burst {
                    let i = 1 + rng.below(15) as usize;
                    let j = if rng.below(2) == 0 {
                        0 // incast: converge on host 0's downlink
                    } else {
                        (i + 1 + rng.below(14) as usize) % 16
                    };
                    if i == j {
                        continue;
                    }
                    let links = router.route(&topo, hosts[i], hosts[j], next_id).unwrap();
                    let id = FlowId(next_id);
                    next_id += 1;
                    let key = net.add_flow_batched(
                        now,
                        id,
                        hosts[i],
                        hosts[j],
                        &links.links,
                        1 + rng.below(2_000_000),
                    );
                    live.push((key, id));
                }
                net.flush(now);
            }
            5..=6 if !live.is_empty() => {
                let i = rng.below(live.len() as u64) as usize;
                let (key, _) = live.swap_remove(i);
                assert!(net.remove_flow(now, key));
            }
            _ => {
                if let Some(due) = net.next_due() {
                    now = now.max(due);
                    instant = due;
                    net.advance_due(due);
                }
            }
        }
        let batch: Vec<(FlowId, SimTime)> = net
            .take_completed()
            .into_iter()
            .map(|c| (c.id, instant))
            .collect();
        live.retain(|(_, id)| !batch.iter().any(|(d, _)| d == id));
        done.extend(batch);
        for &(_, id) in &live {
            rates.push((
                step,
                id.0,
                net.flow_rate_bps(id).expect("live flow is rated"),
            ));
        }
    }
    (rates, done)
}

/// Tentpole equivalence property: arbitrary batched-admission /
/// cancellation / completion sequences produce identical rate
/// trajectories and completion instants across all three solver arms.
/// Rates match to fixed-point quanta; completion instants to the 1 ns
/// ceil-guard the due computation carries.
#[test]
fn flow_solver_arms_agree_on_batched_incast_churn() {
    let kinds = [
        FlowSolverKind::Reference,
        FlowSolverKind::Incremental,
        FlowSolverKind::Cohort,
    ];
    for trial in 0..4u64 {
        let built = fat_tree(4, LinkSpec::gigabit());
        let runs: Vec<ChurnTrace> = kinds
            .iter()
            .map(|&kind| {
                let mut net = FlowNet::with_solver(&built.topology, kind);
                drive_batched_churn(&mut net, trial)
            })
            .collect();
        let (ref_rates, ref_done) = &runs[0];
        let quantum = 1.0 / (1u64 << 20) as f64;
        for (run, kind) in runs[1..].iter().zip(&kinds[1..]) {
            let (rates, done) = run;
            assert_eq!(ref_rates.len(), rates.len(), "trial {trial} vs {kind:?}");
            for (&(s, id, ra), &(_, _, rb)) in ref_rates.iter().zip(rates) {
                assert!(
                    (ra - rb).abs() <= (1e-9 * ra.max(rb)).max(4.0 * quantum),
                    "trial {trial} step {s} flow {id}: {ra} vs {rb} ({kind:?})"
                );
            }
            assert_eq!(ref_done.len(), done.len(), "trial {trial} vs {kind:?}");
            for (&(ida, ta), &(idb, tb)) in ref_done.iter().zip(done) {
                assert_eq!(ida, idb, "trial {trial}: completion order ({kind:?})");
                let gap = ta.max(tb).saturating_duration_since(ta.min(tb));
                assert!(
                    gap <= SimDuration::from_nanos(1),
                    "trial {trial} flow {ida}: completion {ta} vs {tb} ({kind:?})"
                );
            }
        }
    }
}

/// Satellite check: flow completions under the incremental solver are
/// bitwise deterministic — two runs of the same fixed-seed churn produce
/// identical completion sequences, rates, and instants.
#[test]
fn flow_completions_bitwise_deterministic_under_incremental_solver() {
    let run = |trial: u64| {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut net = FlowNet::with_solver(&built.topology, FlowSolverKind::Incremental);
        let mut rates: Vec<u64> = Vec::new();
        let mut done: Vec<(FlowId, SimTime)> = Vec::new();
        drive_flow_churn(
            &mut net,
            trial,
            |_, _, rate| rates.push(rate.to_bits()),
            |_, batch| done.extend_from_slice(batch),
        );
        (rates, done)
    };
    for trial in 0..3u64 {
        assert_eq!(run(trial), run(trial), "trial {trial}");
    }
}

/// ECMP routes in a fat tree are always shortest and loop-free.
#[test]
#[allow(clippy::disallowed_types)] // loop-detection set; order unobserved
fn fat_tree_routes_shortest_loop_free() {
    let mut rng = SimRng::seed_from(0xFA7);
    let built = fat_tree(4, LinkSpec::gigabit());
    let mut router = Router::new();
    for _ in 0..CASES {
        let seed = rng.next_u64();
        let a = rng.below(16) as usize;
        let b = rng.below(16) as usize;
        let (ha, hb) = (built.hosts[a], built.hosts[b]);
        let route = router
            .route(&built.topology, ha, hb, seed)
            .expect("connected");
        let dist = router.distance(&built.topology, ha, hb).expect("connected");
        assert_eq!(route.hops() as u32, dist);
        let mut seen = std::collections::HashSet::new();
        for n in &route.nodes {
            assert!(seen.insert(*n), "loop at {n}");
        }
    }
}
