//! Property-based tests on the core data structures and invariants,
//! spanning crates (proptest).

use proptest::prelude::*;

use holdcsim_des::queue::EventQueue;
use holdcsim_des::stats::{SampleSet, Tally, TimeWeighted};
use holdcsim_des::time::{SimDuration, SimTime};
use holdcsim_network::flow::FlowNet;
use holdcsim_network::ids::{FlowId, LinkId};
use holdcsim_network::routing::Router;
use holdcsim_network::topologies::{fat_tree, star, LinkSpec};
use holdcsim_workload::dag::{JobDag, TaskSpec};

proptest! {
    /// The event calendar pops in nondecreasing time order and FIFO within
    /// a timestamp, regardless of push order.
    #[test]
    fn queue_pops_sorted(times in prop::collection::vec(0u64..1_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.push(SimTime::from_nanos(t), i);
        }
        let mut last: Option<(SimTime, usize)> = None;
        while let Some((t, i)) = q.pop() {
            if let Some((lt, li)) = last {
                prop_assert!(t >= lt);
                if t == lt {
                    prop_assert!(i > li, "FIFO violated within a timestamp");
                }
            }
            last = Some((t, i));
        }
    }

    /// Cancelling an arbitrary subset removes exactly that subset.
    #[test]
    fn queue_cancellation_is_exact(
        n in 1usize..100,
        cancel_mask in prop::collection::vec(any::<bool>(), 100),
    ) {
        let mut q = EventQueue::new();
        let tokens: Vec<_> = (0..n).map(|i| q.push(SimTime::from_nanos(i as u64), i)).collect();
        let mut expect: Vec<usize> = Vec::new();
        for (i, tok) in tokens.iter().enumerate() {
            if cancel_mask[i] {
                q.cancel(*tok);
            } else {
                expect.push(i);
            }
        }
        let got: Vec<usize> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        prop_assert_eq!(got, expect);
    }

    /// Welford tally matches the naive two-pass computation.
    #[test]
    fn tally_matches_naive(xs in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let tally: Tally = xs.iter().copied().collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n;
        prop_assert!((tally.mean() - mean).abs() <= 1e-6 * mean.abs().max(1.0));
        prop_assert!((tally.population_variance() - var).abs() <= 1e-4 * var.max(1.0));
    }

    /// Time-weighted integral is invariant to splitting an interval with
    /// redundant set() calls.
    #[test]
    fn timeweighted_split_invariance(
        v in -100f64..100.0,
        t1 in 1u64..1_000,
        t2 in 1u64..1_000,
    ) {
        let end = SimTime::from_nanos(t1 + t2);
        let plain = TimeWeighted::new(SimTime::ZERO, v);
        let mut split = TimeWeighted::new(SimTime::ZERO, v);
        split.set(SimTime::from_nanos(t1), v);
        prop_assert!((plain.integral(end) - split.integral(end)).abs() < 1e-9);
    }

    /// Nearest-rank quantiles are actual observed samples and monotone in q.
    #[test]
    fn quantiles_are_samples_and_monotone(xs in prop::collection::vec(0f64..1e3, 1..100)) {
        let mut s = SampleSet::unbounded();
        for &x in &xs {
            s.record(x);
        }
        let qs = s.quantiles(&[0.1, 0.5, 0.9, 1.0]);
        let mut prev = f64::NEG_INFINITY;
        for q in qs.into_iter().flatten() {
            prop_assert!(xs.contains(&q));
            prop_assert!(q >= prev);
            prev = q;
        }
    }

    /// Random layered DAGs from the builder are acyclic with consistent
    /// adjacency, and the critical path never exceeds total work.
    #[test]
    fn dag_invariants(
        layer_sizes in prop::collection::vec(1u32..4, 1..5),
        service_ms in 1u64..50,
    ) {
        let mut b = JobDag::builder();
        let mut idx = 0u32;
        let mut layers: Vec<Vec<u32>> = Vec::new();
        for &w in &layer_sizes {
            let mut layer = Vec::new();
            for _ in 0..w {
                b = b.task(TaskSpec::compute(SimDuration::from_millis(service_ms)));
                if let Some(prev) = layers.last() {
                    b = b.edge(prev[0], idx, 10);
                }
                layer.push(idx);
                idx += 1;
            }
            layers.push(layer);
        }
        let dag = b.build().expect("layered construction is acyclic");
        prop_assert!(dag.critical_path() <= dag.total_work());
        prop_assert_eq!(dag.topo_order().len(), dag.len());
        // Roots have no predecessors; everything else has at least one
        // or is a layer-0 task.
        for &r in dag.roots() {
            prop_assert!(dag.predecessors(r).is_empty());
        }
    }

    /// Max-min fair allocation never oversubscribes a link, and the total
    /// rate of flows through the star's hub is positive when flows exist.
    #[test]
    fn flow_rates_respect_capacity(pairs in prop::collection::vec((0u32..6, 0u32..6), 1..20)) {
        let built = star(6, LinkSpec::gigabit());
        let mut router = Router::new();
        let mut net = FlowNet::new(&built.topology);
        let mut id = 0u64;
        for (a, b) in pairs {
            if a == b {
                continue;
            }
            let (ha, hb) = (built.hosts[a as usize], built.hosts[b as usize]);
            let route = router.route(&built.topology, ha, hb, id).expect("star connected");
            net.add_flow(SimTime::ZERO, FlowId(id), ha, hb, &route.links, 1_000);
            id += 1;
        }
        for l in 0..built.topology.links().len() {
            let u = net.link_utilization(LinkId(l as u32));
            prop_assert!(u <= 1.0 + 1e-9, "link {} oversubscribed: {}", l, u);
        }
    }

    /// ECMP routes in a fat tree are always shortest and loop-free.
    #[test]
    fn fat_tree_routes_shortest_loop_free(seed in any::<u64>(), a in 0usize..16, b in 0usize..16) {
        let built = fat_tree(4, LinkSpec::gigabit());
        let mut router = Router::new();
        let (ha, hb) = (built.hosts[a], built.hosts[b]);
        let route = router.route(&built.topology, ha, hb, seed).expect("connected");
        let dist = router.distance(&built.topology, ha, hb).expect("connected");
        prop_assert_eq!(route.hops() as u32, dist);
        let mut seen = std::collections::HashSet::new();
        for n in &route.nodes {
            prop_assert!(seen.insert(*n), "loop at {}", n);
        }
    }
}
