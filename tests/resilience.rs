//! Cross-crate fault-injection properties: an empty plan is bitwise
//! invisible, fault schedules are deterministic across federation worker
//! counts and flow-solver arms, and the job ledger reconciles — no
//! admitted job is ever silently lost.

use holdcsim::config::{ClusterConfig, CommModel, SimConfig, WanConfig};
use holdcsim::experiments::net_scalability_config;
use holdcsim::sim::Simulation;
use holdcsim_cluster::Federation;
use holdcsim_des::time::SimDuration;
use holdcsim_faults::FaultPlan;
use holdcsim_network::flow::FlowSolverKind;
use holdcsim_workload::presets::WorkloadPreset;

const PACKET: CommModel = CommModel::Packet {
    mtu: 1_500,
    buffer_bytes: 1 << 20,
};

/// A communicating fabric config: every arm carries real transfers so
/// the comm model and solver choice genuinely matter.
fn net_cfg(comm: CommModel, solver: FlowSolverKind, seed: u64) -> SimConfig {
    let mut cfg = net_scalability_config(16, comm, SimDuration::from_millis(200), seed);
    cfg.network.as_mut().expect("fabric attached").flow_solver = solver;
    cfg
}

/// A 2-site federation whose affinity skew forces WAN forwarding.
fn fed_cfg(faults: Option<&str>) -> ClusterConfig {
    let base = SimConfig::server_farm(
        4,
        2,
        0.4,
        WorkloadPreset::WebSearch.template(),
        SimDuration::from_secs(2),
    );
    let wan = WanConfig::full_mesh(2, 10_000_000_000, SimDuration::from_millis(5));
    let mut cc =
        ClusterConfig::uniform(base, 2, wan).with_geo(holdcsim_sched::geo::GeoPolicy::LoadBalanced);
    cc.sites[0].affinity = Some(1.0);
    cc.sites[1].affinity = Some(0.0);
    cc.faults = faults.map(|s| FaultPlan::parse(s).expect("plan parses"));
    cc
}

/// Satellite property: an empty `FaultPlan` yields byte-identical report
/// JSON to a plan-less run — across the flow and packet comm models and
/// all three flow-solver arms, and across a whole federation.
#[test]
fn empty_fault_plan_is_byte_identical_to_plan_less_runs() {
    let arms = [
        (CommModel::Flow, FlowSolverKind::Incremental),
        (CommModel::Flow, FlowSolverKind::Reference),
        (CommModel::Flow, FlowSolverKind::Cohort),
        (PACKET, FlowSolverKind::Incremental),
    ];
    for (comm, solver) in arms {
        let baseline = Simulation::new(net_cfg(comm, solver, 11)).run();
        let mut cfg = net_cfg(comm, solver, 11);
        cfg.faults = Some(FaultPlan::default());
        let armed = Simulation::new(cfg).run();
        assert_eq!(
            baseline.to_json(),
            armed.to_json(),
            "empty plan must be invisible ({comm:?}, {solver:?})"
        );
        assert!(baseline.resilience.is_none(), "no resilience section");
    }
    let baseline = Federation::new(&fed_cfg(None)).run_serial();
    let armed = Federation::new(&fed_cfg(Some(""))).run_serial();
    assert_eq!(baseline.to_json(), armed.to_json());
    assert!(baseline.resilience.is_none());
}

/// Satellite property: a crash+recover plan (with a WAN partition in the
/// middle) produces byte-identical federation reports at 1, 2, and 4
/// workers vs the thread-free serial arm.
#[test]
fn fault_plans_are_byte_identical_across_federation_worker_counts() {
    let plan = "site0.crash@300ms:1; site0.recover@600ms:1; \
                site1.crash@400ms:0; site1.recover@700ms:0; \
                wan-down@500ms:0; wan-up@900ms:0";
    let reference = Federation::new(&fed_cfg(Some(plan))).run_serial();
    assert!(reference.jobs_forwarded() > 0, "the WAN must be exercised");
    let r = reference.resilience.expect("fault run reports resilience");
    assert_eq!(r.faults_injected, 2, "one crash per site");
    assert!(r.server_downtime_s > 0.0);
    assert!(r.wan_link_downtime_s > 0.0, "the partition really happened");
    for workers in [1usize, 2, 4] {
        let parallel = Federation::new(&fed_cfg(Some(plan))).run_with_workers(workers);
        assert_eq!(
            reference.to_json(),
            parallel.to_json(),
            "fault run diverged at {workers} workers"
        );
    }
}

/// Acceptance property: the same fault schedule (a mid-run switch outage
/// plus a crash wave on a flow fabric) leaves all three solver arms
/// byte-identical to each other.
#[test]
fn fault_runs_are_byte_identical_across_flow_solver_arms() {
    let run = |solver| {
        let mut cfg = net_cfg(CommModel::Flow, solver, 7);
        cfg.faults = Some(
            FaultPlan::parse(
                "switch-down@50ms:0; switch-up@120ms:0; \
                 crash@40ms:3; recover@90ms:3; crash@60ms:9; recover@130ms:9",
            )
            .expect("plan parses"),
        );
        Simulation::new(cfg).run()
    };
    let reference = run(FlowSolverKind::Incremental);
    let r = reference.resilience.as_ref().expect("resilience reported");
    assert!(r.faults_injected >= 3 && r.switch_downtime_s > 0.0);
    for solver in [FlowSolverKind::Reference, FlowSolverKind::Cohort] {
        assert_eq!(
            reference.to_json(),
            run(solver).to_json(),
            "fault run diverged under {solver:?}"
        );
    }
}

/// Satellite invariant: no job is lost. Every admitted job ends
/// completed (clean or retried) or is still accounted for — and the
/// abandoned count never exceeds the unfinished pool.
#[test]
fn no_admitted_job_is_lost_under_fault_storms() {
    let storm = "crash@20ms:0; recover@60ms:0; crash@35ms:5; recover@80ms:5; \
                 switch-down@50ms:1; switch-up@100ms:1; \
                 straggle@30ms:7,0.25,60ms; \
                 mtbf:server=11,mtbf=70ms,mttr=15ms; \
                 retry:max=2,backoff=5ms,mult=2";
    for (seed, comm) in [(1u64, CommModel::Flow), (2, PACKET), (3, CommModel::Flow)] {
        let mut cfg = net_cfg(comm, FlowSolverKind::Incremental, seed);
        cfg.faults = Some(FaultPlan::parse(storm).expect("plan parses"));
        let report = Simulation::new(cfg).run();
        let r = report.resilience.as_ref().expect("resilience reported");
        assert!(r.faults_injected > 0, "seed {seed}: the storm really hit");
        assert_eq!(
            report.jobs_submitted,
            report.jobs_completed + r.jobs_unfinished,
            "seed {seed}: ledger must reconcile"
        );
        assert!(
            r.jobs_abandoned <= r.jobs_unfinished,
            "seed {seed}: abandoned jobs are a subset of unfinished"
        );
        // Every completed job lands in exactly one latency bucket.
        assert_eq!(
            r.clean.count + r.affected.count,
            report.jobs_completed,
            "seed {seed}: clean/affected split covers completions"
        );
        assert!(
            report.jobs_completed > 0,
            "seed {seed}: work still finishes"
        );
    }
    // The federation ledger closes too: unfinished = jobs pending in the
    // site tables plus jobs caught mid-WAN at the horizon.
    let plan = "site0.crash@300ms:1; site0.recover@600ms:1; wan-down@500ms:0; wan-up@900ms:0";
    let report = Federation::new(&fed_cfg(Some(plan))).run_serial();
    let r = report.resilience.expect("resilience reported");
    let mid_wan = report.wan.transfers - report.wan.delivered;
    assert_eq!(
        r.jobs_unfinished,
        report.jobs_submitted() - report.jobs_completed() + mid_wan,
        "federation ledger must reconcile"
    );
}
